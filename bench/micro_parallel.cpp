// Parallel-engine micro-benchmarks (google-benchmark): the window
// barrier and mailbox merge that bound ParallelEngine's per-window
// overhead, plus the whole-cluster incast run at several engine thread
// counts so serial-vs-parallel wall-clock is measured, not assumed.
//
// Doubles as the perf-regression harness for the parallel path:
// `--json=PATH` writes a `hicc.bench.parallel.v1` JSON that CI compares
// against the committed BENCH_PARALLEL.json baseline with
// scripts/check_bench_regression.py — see docs/PERFORMANCE.md and
// docs/PARALLELISM.md. Speedup is machine-dependent (a 1-core runner
// can only show the overhead side); the committed baseline records the
// thread counts it ran with via the engine_threads counter.
#include <benchmark/benchmark.h>

#include <atomic>
#include <cstdint>
#include <cstdlib>
#include <fstream>
#include <new>
#include <string>
#include <string_view>
#include <vector>

#include "common/fmt.h"
#include "core/cluster.h"
#include "sim/parallel.h"
#include "sim/simulator.h"

// ---------------------------------------------------------------------------
// Counting allocator hook (same shape as micro_engine's): every global
// operator new bumps g_allocs so benches can report exact heap
// allocations per iteration ("allocs_per_op").
static std::atomic<std::uint64_t> g_allocs{0};

static void* counted_alloc(std::size_t n) {
  g_allocs.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(n ? n : 1)) return p;
  throw std::bad_alloc();
}

void* operator new(std::size_t n) { return counted_alloc(n); }
void* operator new[](std::size_t n) { return counted_alloc(n); }
void* operator new(std::size_t n, std::align_val_t a) {
  g_allocs.fetch_add(1, std::memory_order_relaxed);
  const auto align = static_cast<std::size_t>(a);
  const std::size_t rounded = (n + align - 1) / align * align;
  if (void* p = std::aligned_alloc(align, rounded ? rounded : align)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t n, std::align_val_t a) {
  return ::operator new(n, a);
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }

namespace {

using namespace hicc;

/// Snapshot g_allocs around the timed loop and report the average as an
/// `allocs_per_op` user counter (also picked up by the --json reporter).
class AllocTally {
 public:
  explicit AllocTally(benchmark::State& state)
      : state_(state), start_(g_allocs.load(std::memory_order_relaxed)) {}
  ~AllocTally() {
    const std::uint64_t delta =
        g_allocs.load(std::memory_order_relaxed) - start_;
    state_.counters["allocs_per_op"] = benchmark::Counter(
        static_cast<double>(delta), benchmark::Counter::kAvgIterations);
  }

 private:
  benchmark::State& state_;
  std::uint64_t start_;
};

/// Pure-arithmetic calibration loop (no memory traffic), identical to
/// micro_engine's: the regression gate normalizes every bench against
/// this so thresholds are comparable across machines.
void BM_ReferenceSpin(benchmark::State& state) {
  std::uint64_t x = 0x9e3779b97f4a7c15ull;
  for (auto _ : state) {
    for (int i = 0; i < 64; ++i) {  // splitmix64 finalizer, fixed work
      x ^= x >> 30;
      x *= 0xbf58476d1ce4e5b9ull;
      x ^= x >> 27;
      x *= 0x94d049bb133111ebull;
      x ^= x >> 31;
    }
    benchmark::DoNotOptimize(x);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_ReferenceSpin);

/// Per-window fixed cost of the conservative engine: 9 empty partitions
/// (the 2x2x8-cluster shape) advance one lookahead window per iteration.
/// Arg is the engine thread count -- threads=1 is the pure window loop,
/// threads>1 adds the publish/claim/barrier handshake. Must stay
/// allocation-free after construction; this is the bench the CI
/// regression gate pins (see docs/PERFORMANCE.md).
void BM_ParallelWindowBarrier(benchmark::State& state) {
  sim::ParallelParams params;
  params.partitions = 9;
  params.lookahead = TimePs::from_us(2);
  params.threads = static_cast<int>(state.range(0));
  sim::ParallelEngine engine(params);
  TimePs end = engine.now();
  end += params.lookahead;
  engine.run_until(end);  // warm the window loop
  AllocTally tally(state);
  for (auto _ : state) {
    end += params.lookahead;  // exactly one window per iteration
    engine.run_until(end);
  }
  state.counters["engine_threads"] =
      benchmark::Counter(static_cast<double>(engine.threads()));
  state.SetItemsProcessed(static_cast<std::int64_t>(engine.windows()));
}
BENCHMARK(BM_ParallelWindowBarrier)->Arg(1)->Arg(2);

/// Cross-partition mailbox throughput: every host partition posts 8
/// messages into the fabric partition each window (64 total), the
/// barrier drains, merge-sorts by (time, src, seq), and schedules them.
/// Items/s is messages per wall-second; the merge path must stay
/// allocation-free once the reserved rows are warm.
void BM_ParallelMailboxMerge(benchmark::State& state) {
  constexpr int kPerSource = 8;
  sim::ParallelParams params;
  params.partitions = 9;
  params.lookahead = TimePs::from_us(2);
  params.threads = 1;
  sim::ParallelEngine engine(params);
  std::uint64_t sink = 0;
  TimePs end = engine.now();
  const auto window = [&] {
    const TimePs due = end + params.lookahead;
    for (int src = 1; src < params.partitions; ++src) {
      for (int i = 0; i < kPerSource; ++i) {
        engine.post(src, 0, due, [&sink] { ++sink; });
      }
    }
    end = due;
    engine.run_until(end);
  };
  window();  // warm the mailbox rows and the destination queue
  AllocTally tally(state);
  for (auto _ : state) window();
  benchmark::DoNotOptimize(sink);
  state.SetItemsProcessed(static_cast<std::int64_t>(engine.messages_delivered()));
}
BENCHMARK(BM_ParallelMailboxMerge);

/// Whole-cluster macro bench: the 2-leaf/2-spine 8-host incast with two
/// full receiver hosts, end to end. Arg selects the execution mode --
/// 0 is the legacy single-Simulator path, N >= 1 the partitioned engine
/// with N threads -- so one record holds serial and parallel wall-clock
/// side by side. Items/s is simulator events per wall-second; results
/// are bitwise-identical across args >= 1 (tests/parallel_test.cpp), so
/// any delta between rows is pure engine overhead or speedup.
void BM_ClusterIncast(benchmark::State& state) {
  std::int64_t events = 0;
  for (auto _ : state) {
    ClusterConfig cfg;
    cfg.topology.leaves = 2;
    cfg.topology.spines = 2;
    cfg.topology.hosts_per_leaf = 4;
    cfg.receivers = 2;
    cfg.host.rx_threads = 4;
    cfg.host.warmup = TimePs::from_us(200);
    cfg.host.measure = TimePs::from_ms(1);
    cfg.parallelism = static_cast<int>(state.range(0));
    ClusterExperiment exp(std::move(cfg));
    const ClusterMetrics m = exp.run();
    events += static_cast<std::int64_t>(m.events_executed);
    benchmark::DoNotOptimize(events);
  }
  state.counters["engine_threads"] =
      benchmark::Counter(static_cast<double>(state.range(0)));
  state.SetItemsProcessed(events);
}
BENCHMARK(BM_ClusterIncast)->Arg(0)->Arg(1)->Arg(2)->Unit(benchmark::kMillisecond);

// ---------------------------------------------------------------------------
// `hicc.bench.parallel.v1` JSON output: micro_engine's tee reporter with
// the parallel schema tag, so the regression gate can tell the records
// apart.

class JsonTeeReporter : public benchmark::ConsoleReporter {
 public:
  struct Row {
    std::string name;
    double ns_per_op = 0;
    double items_per_sec = 0;
    double allocs_per_op = 0;
    std::int64_t iterations = 0;
  };

  void ReportRuns(const std::vector<Run>& report) override {
    for (const Run& r : report) {
      if (r.run_type != Run::RT_Iteration || r.error_occurred) continue;
      Row row;
      row.name = r.benchmark_name();
      const double iters =
          r.iterations > 0 ? static_cast<double>(r.iterations) : 1.0;
      row.ns_per_op = r.real_accumulated_time / iters * 1e9;
      row.iterations = r.iterations;
      if (auto it = r.counters.find("items_per_second"); it != r.counters.end())
        row.items_per_sec = it->second;
      if (auto it = r.counters.find("allocs_per_op"); it != r.counters.end())
        row.allocs_per_op = it->second;
      rows_.push_back(std::move(row));
    }
    ConsoleReporter::ReportRuns(report);
  }

  bool write_json(const std::string& path) const {
    std::ofstream os(path);
    if (!os) return false;
    os << "{\"schema\": \"hicc.bench.parallel.v1\",\n\"benchmarks\": [\n";
    for (std::size_t i = 0; i < rows_.size(); ++i) {
      const Row& r = rows_[i];
      os << " {\"name\": \"" << r.name << "\", \"ns_per_op\": ";
      put_double(os, r.ns_per_op);
      os << ", \"items_per_sec\": ";
      put_double(os, r.items_per_sec);
      os << ", \"allocs_per_op\": ";
      put_double(os, r.allocs_per_op);
      os << ", \"iterations\": " << r.iterations << "}";
      os << (i + 1 < rows_.size() ? ",\n" : "\n");
    }
    os << "]}\n";
    return os.good();
  }

 private:
  std::vector<Row> rows_;
};

}  // namespace

int main(int argc, char** argv) {
  std::string json_path;
  std::vector<char*> args;
  for (int i = 0; i < argc; ++i) {
    const std::string_view a = argv[i];
    if (a.rfind("--json=", 0) == 0) {
      json_path = std::string(a.substr(7));
    } else {
      args.push_back(argv[i]);
    }
  }
  int filtered_argc = static_cast<int>(args.size());
  args.push_back(nullptr);
  benchmark::Initialize(&filtered_argc, args.data());
  if (benchmark::ReportUnrecognizedArguments(filtered_argc, args.data()))
    return 1;
  JsonTeeReporter reporter;
  benchmark::RunSpecifiedBenchmarks(&reporter);
  benchmark::Shutdown();
  if (!json_path.empty() && !reporter.write_json(json_path)) {
    std::fprintf(stderr, "micro_parallel: cannot write %s\n", json_path.c_str());
    return 1;
  }
  return 0;
}
