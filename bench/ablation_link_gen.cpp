// Ablation A12 (§4b): alternatives to the PCIe link layer.
//
// "CXL might alleviate host-congestion problems to some degree via
// potentially reducing PCIe latency or via expanding memory bandwidth
// over PCIe channels." We sweep the host link across PCIe 3.0/4.0/5.0
// x16 and a CXL-flavored preset (gen5 rate with a much lower-latency
// link layer), at the paper's worst IOMMU operating point. Faster
// links raise the ceiling headroom (PCIe is "only nominally faster
// than the line rate" on the testbed); lower link latency shortens the
// credit loop. Neither removes the translation serialization itself --
// the ceiling moves, the mechanism stays.
#include <vector>

#include "bench_util.h"

using namespace hicc;

int main() {
  bench::header(
      "Ablation A12", "host link generation sweep (16 receiver cores, IOMMU ON)",
      "throughput is essentially flat across gen3/gen4/gen5 and the "
      "CXL-flavored preset: under IOMMU congestion the ordered translation "
      "pipeline -- not link rate or link latency -- is the binding "
      "constraint, supporting §4's caution that CXL alleviates host "
      "congestion only 'to some degree'");

  struct Preset {
    const char* name;
    double gts;
    TimePs link_latency;
  };
  const Preset presets[] = {
      {"pcie3_x16", 8.0, TimePs::from_ns(50)},
      {"pcie4_x16", 16.0, TimePs::from_ns(50)},
      {"pcie5_x16", 32.0, TimePs::from_ns(50)},
      {"cxl_like", 32.0, TimePs::from_ns(15)},
  };

  Table t({"link", "raw_gbps", "effective_gbps", "app_gbps", "drop_pct",
           "misses_per_pkt"});
  std::vector<ExperimentConfig> cfgs;
  for (const auto& preset : presets) {
    ExperimentConfig cfg = bench::base_config();
    cfg.rx_threads = 16;
    cfg.pcie.gigatransfers_per_lane = preset.gts;
    cfg.pcie.link_latency = preset.link_latency;
    cfgs.push_back(cfg);
  }

  const auto results = bench::sweep(cfgs);
  for (std::size_t i = 0; i < std::size(presets); ++i) {
    const ExperimentConfig& cfg = results[i].config;
    const Metrics& m = results[i].metrics;
    t.add_row({std::string(presets[i].name), cfg.pcie.raw_rate().gbps(),
               cfg.pcie.effective_goodput().gbps(), m.app_throughput_gbps,
               m.drop_rate * 100.0, m.iotlb_misses_per_packet});
  }
  bench::finish(t, "ablation_link_gen.csv");
  bench::save_json(results, "ablation_link_gen.json");
  return 0;
}
