// Ablation A10 (§4 "rethinking congestion response"): coordinated
// resource allocation -- "rather than reducing rate for network
// transfers upon congestion at the NIC, one could trigger CPU
// rescheduling... scheduling applications on NUMA nodes different from
// the one where the NIC is connected."
//
// Moving the STREAM antagonist to the remote NUMA node takes it off
// the NIC's memory bus entirely: the network keeps line rate AND the
// antagonist keeps its full memory bandwidth -- a strictly better
// allocation than throttling either side.
#include <vector>

#include "bench_util.h"

using namespace hicc;

int main() {
  bench::header(
      "Ablation A10", "antagonist placement: NIC-local vs remote NUMA node "
                      "(12 receiver cores, IOMMU OFF)",
      "remote placement restores full network throughput with zero drops "
      "while the antagonist still achieves its full bandwidth on the other "
      "node's memory controllers");

  Table t({"antagonist_cores", "placement", "app_gbps", "drop_pct",
           "local_mem_gbs", "remote_mem_gbs", "antagonist_gbs"});
  std::vector<ExperimentConfig> cfgs;
  for (int a : {8, 12, 15}) {
    for (const bool remote : {false, true}) {
      ExperimentConfig cfg = bench::base_config();
      cfg.rx_threads = 12;
      cfg.iommu_enabled = false;
      cfg.antagonist_cores = a;
      cfg.antagonist_remote_numa = remote;
      cfgs.push_back(cfg);
    }
  }

  const auto results =
      bench::sweep(cfgs, [](Experiment& exp, sweep::SweepResult& r) {
        r.extra["antagonist_gbs"] = exp.antagonist().achieved().gigabytes_per_sec();
      });
  for (const auto& r : results) {
    const Metrics& m = r.metrics;
    t.add_row({std::int64_t{r.config.antagonist_cores},
               std::string(r.config.antagonist_remote_numa ? "remote" : "nic-local"),
               m.app_throughput_gbps, m.drop_rate * 100.0,
               m.memory.total_gbytes_per_sec, m.remote_memory.total_gbytes_per_sec,
               r.extra.at("antagonist_gbs")});
  }
  bench::finish(t, "ablation_numa_reschedule.csv");
  bench::save_json(results, "ablation_numa_reschedule.json");
  return 0;
}
