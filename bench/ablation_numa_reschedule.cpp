// Ablation A10 (§4 "rethinking congestion response"): coordinated
// resource allocation -- "rather than reducing rate for network
// transfers upon congestion at the NIC, one could trigger CPU
// rescheduling... scheduling applications on NUMA nodes different from
// the one where the NIC is connected."
//
// Three placements per core count, all driven by fault scripts
// (docs/FAULTS.md):
//   nic-local   -- antagonist on the NIC's node for the whole run
//   remote      -- antagonist on the other NUMA node (off the NIC's bus)
//   rescheduled -- starts NIC-local, then a mid-measurement
//                  `mem.antagonist,cores=0` event models the scheduler
//                  evicting it; the second half of the window shows the
//                  network recovering
// Moving the antagonist off the NIC's memory bus keeps line rate AND
// full antagonist bandwidth -- strictly better than throttling either.
#include <string>
#include <vector>

#include "bench_util.h"
#include "fault/script.h"

using namespace hicc;

namespace {

enum class Placement { kNicLocal, kRemote, kRescheduled };

const char* name_of(Placement p) {
  switch (p) {
    case Placement::kNicLocal:
      return "nic-local";
    case Placement::kRemote:
      return "remote";
    case Placement::kRescheduled:
      return "rescheduled";
  }
  return "?";
}

}  // namespace

int main() {
  bench::header(
      "Ablation A10", "antagonist placement: NIC-local vs remote NUMA node vs "
                      "mid-run rescheduling (12 receiver cores, IOMMU OFF)",
      "remote placement restores full network throughput with zero drops "
      "while the antagonist still achieves its full bandwidth on the other "
      "node's memory controllers; rescheduling mid-run recovers throughput "
      "for the second half of the window");

  Table t({"antagonist_cores", "placement", "app_gbps", "drop_pct",
           "local_mem_gbs", "remote_mem_gbs", "antagonist_gbs"});
  const Placement placements[] = {Placement::kNicLocal, Placement::kRemote,
                                  Placement::kRescheduled};
  const int core_counts[] = {8, 12, 15};
  std::vector<ExperimentConfig> cfgs;
  for (int a : core_counts) {
    for (const Placement p : placements) {
      ExperimentConfig cfg = bench::base_config();
      cfg.rx_threads = 12;
      cfg.iommu_enabled = false;
      cfg.antagonist_remote_numa = (p == Placement::kRemote);
      std::string spec = "mem.antagonist@0,cores=" + std::to_string(a);
      if (p == Placement::kRescheduled) {
        // The "scheduler" evicts the antagonist halfway through the
        // measurement window (a permanent cores=0 override).
        const TimePs evict = cfg.warmup + TimePs(cfg.measure.ps() / 2);
        spec += ";mem.antagonist@" +
                std::to_string(static_cast<long long>(evict.us())) + "us,cores=0";
      }
      cfg.faults = fault::parse_script(spec).script;
      cfgs.push_back(cfg);
    }
  }

  const auto results =
      bench::sweep(cfgs, [](Experiment& exp, sweep::SweepResult& r) {
        r.extra["antagonist_gbs"] = exp.antagonist().achieved().gigabytes_per_sec();
      });
  for (std::size_t i = 0; i < results.size(); ++i) {
    const auto& r = results[i];
    const Metrics& m = r.metrics;
    t.add_row({std::int64_t{core_counts[i / 3]},
               std::string(name_of(placements[i % 3])), m.app_throughput_gbps,
               m.drop_rate * 100.0, m.memory.total_gbytes_per_sec,
               m.remote_memory.total_gbytes_per_sec, r.extra.at("antagonist_gbs")});
  }
  bench::finish(t, "ablation_numa_reschedule.csv");
  bench::save_json(results, "ablation_numa_reschedule.json");
  return 0;
}
