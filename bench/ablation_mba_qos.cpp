// Ablation A4 (§4): MBA-style memory-bandwidth QoS.
//
// "Emerging technologies like Intel MBA and ARM MPAM enable enforcing
// QoS guarantees for memory bus" -- throttling the antagonist class
// restores the NIC's share of memory bandwidth and recovers
// NIC-to-CPU throughput without touching the network protocol.
#include <vector>

#include "bench_util.h"

using namespace hicc;

int main() {
  bench::header(
      "Ablation A4", "MBA-style antagonist throttle (12 receiver cores, "
                     "15 antagonist cores, IOMMU OFF)",
      "tighter antagonist caps restore NIC throughput toward the uncontended "
      "92Gbps while total memory bandwidth drops");

  Table t({"antagonist_cap_gbs", "app_gbps", "drop_pct", "mem_total_gbs",
           "mem_antagonist_gbs"});
  std::vector<ExperimentConfig> cfgs;
  for (double cap : {0.0, 75.0, 60.0, 45.0, 30.0}) {
    ExperimentConfig cfg = bench::base_config();
    cfg.rx_threads = 12;
    cfg.iommu_enabled = false;
    cfg.antagonist_cores = 15;
    cfg.antagonist_throttle_gbps = cap;
    cfgs.push_back(cfg);
  }

  const auto results = bench::sweep(cfgs);
  for (const auto& r : results) {
    const Metrics& m = r.metrics;
    t.add_row({r.config.antagonist_throttle_gbps, m.app_throughput_gbps,
               m.drop_rate * 100.0, m.memory.total_gbytes_per_sec,
               m.memory.by_class_gbytes_per_sec[static_cast<int>(
                   mem::MemClass::kAntagonist)]});
  }
  bench::finish(t, "ablation_mba_qos.csv");
  bench::save_json(results, "ablation_mba_qos.json");
  return 0;
}
