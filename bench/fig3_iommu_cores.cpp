// Figure 3: IOMMU-induced host congestion vs number of receiver cores.
//
// Reproduces all three panels plus the analytic-model overlay:
//   (left)   app throughput vs cores, IOMMU ON / OFF / modeled,
//   (center) drop rate vs cores, IOMMU ON / OFF,
//   (right)  IOTLB misses per packet vs cores.
//
// Workload (§3): 40 senders, 16KB reads, one connection per sender per
// receiver thread, 12MB Rx region per thread, 2M hugepages, 4K MTU.
// The (ON, OFF) pair at every core count runs on the sweep pool; the
// model overlay is computed afterwards from the index-ordered results.
#include <vector>

#include "bench_util.h"
#include "core/model.h"

using namespace hicc;

int main() {
  bench::header(
      "Figure 3", "throughput / drop rate / IOTLB misses vs receiver cores",
      "linear CPU-bottlenecked ramp to 92Gbps at 8 cores; IOMMU OFF stays at "
      "92Gbps; IOMMU ON degrades beyond ~10 cores (10-20% at 16) as IOTLB misses "
      "per packet jump once registered pages exceed the 128-entry IOTLB; drops "
      "appear in the blind window (throughput > ~81Gbps) and shrink once the CC "
      "protocol can see >100us host delay");

  Table t({"cores", "app_gbps_iommu_on", "app_gbps_iommu_off", "modeled_gbps",
           "drop_pct_on", "drop_pct_off", "misses_per_pkt_on"});

  const std::vector<int> cores = {2, 4, 6, 8, 10, 12, 14, 16};
  std::vector<ExperimentConfig> cfgs;
  for (int c : cores) {
    ExperimentConfig on = bench::base_config();
    on.rx_threads = c;
    on.iommu_enabled = true;
    ExperimentConfig off = on;
    off.iommu_enabled = false;
    cfgs.push_back(on);
    cfgs.push_back(off);
  }

  const auto results = bench::sweep(cfgs);

  double miss_free_plateau = 0.0;
  for (std::size_t i = 0; i < cores.size(); ++i) {
    const int c = cores[i];
    const ExperimentConfig& on = results[2 * i].config;
    const Metrics& mon = results[2 * i].metrics;
    const Metrics& moff = results[2 * i + 1].metrics;
    miss_free_plateau = std::max(miss_free_plateau, moff.app_throughput_gbps);

    // The paper overlays the model only where the interconnect (not
    // the CPU) is the bottleneck, i.e. >= 10 cores.
    double modeled = 0.0;
    if (c >= 10) {
      const ThroughputModel model = fit_model(on);
      modeled = std::min(model.app_gbps(mon.iotlb_misses_per_packet, on),
                         miss_free_plateau);
    }

    t.add_row({std::int64_t{c}, mon.app_throughput_gbps, moff.app_throughput_gbps,
               modeled, mon.drop_rate * 100.0, moff.drop_rate * 100.0,
               mon.iotlb_misses_per_packet});
  }
  bench::finish(t, "fig3_iommu_cores.csv");
  bench::save_json(results, "fig3_iommu_cores.json");
  return 0;
}
