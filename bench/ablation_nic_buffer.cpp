// Ablation A6 (§2/§4): NIC input-buffer size.
//
// The paper's drop analysis hinges on the ~1MB NIC SRAM: at >=88.8Gbps
// drain the buffer holds <90us of queueing, below Swift's 100us host
// target, so congestion is invisible until drops. Sweeping the buffer
// moves that blind window: larger buffers let the delay signal engage
// before overflow ("stagnant NIC buffer sizes may necessitate a
// sub-RTT response").
#include <vector>

#include "bench_util.h"

using namespace hicc;

int main() {
  bench::header(
      "Ablation A6", "NIC input-buffer sweep (14 receiver cores, IOMMU ON)",
      "drop rate falls as the buffer grows past rate x host-target (~1.2MB at "
      "full rate); throughput is roughly buffer-independent");

  Table t({"buffer_kib", "app_gbps", "drop_pct", "host_delay_p50_us",
           "host_delay_p99_us"});
  std::vector<ExperimentConfig> cfgs;
  for (int kib : {256, 512, 1024, 2048, 4096, 8192}) {
    ExperimentConfig cfg = bench::base_config();
    cfg.rx_threads = 14;
    cfg.nic.input_buffer = Bytes(static_cast<std::int64_t>(kib) * 1024);
    cfgs.push_back(cfg);
  }

  const auto results = bench::sweep(cfgs);
  for (const auto& r : results) {
    const Metrics& m = r.metrics;
    t.add_row({r.config.nic.input_buffer.count() / 1024, m.app_throughput_gbps,
               m.drop_rate * 100.0, m.host_delay_p50_us, m.host_delay_p99_us});
  }
  bench::finish(t, "ablation_nic_buffer.csv");
  bench::save_json(results, "ablation_nic_buffer.json");
  return 0;
}
