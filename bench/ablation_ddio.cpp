// Ablation A8 (footnote 2): direct cache access (DDIO).
//
// Two effects: (1) when the registered IO working set is small enough
// to fit the LLC's IO ways, DMA writes are absorbed by the cache and
// the NIC stops consuming memory-bus bandwidth -- making it immune to
// memory antagonists; (2) with DDIO off, rx-thread copies read every
// byte from DRAM, adding ~8 GB/s of extra bus load.
//
// The DDIO hit rate lives in PCIe stats, not Metrics, so the sweep's
// probe harvests it per point while each Experiment is still alive.
#include <vector>

#include "bench_util.h"

using namespace hicc;

int main() {
  bench::header(
      "Ablation A8", "DDIO on/off x Rx-region size (12 cores, 15 antagonist "
                     "cores, IOMMU OFF)",
      "small IO working sets + DDIO ride out memory-bus congestion (writes "
      "never reach DRAM); at the paper's BDP-scale 12MB regions DDIO leaks "
      "almost everything and the antagonist bites either way");

  Table t({"region_mb", "ddio", "app_gbps", "ddio_hit_pct", "nic_dram_gbs",
           "copy_dram_gbs", "drop_pct"});
  std::vector<ExperimentConfig> cfgs;
  for (double mb : {0.25, 1.0, 4.0, 12.0}) {
    for (const bool ddio_on : {true, false}) {
      ExperimentConfig cfg = bench::base_config();
      cfg.rx_threads = 12;
      cfg.iommu_enabled = false;
      cfg.antagonist_cores = 15;
      cfg.data_region = Bytes::mib(mb);
      cfg.ddio.enabled = ddio_on;
      cfgs.push_back(cfg);
    }
  }

  const auto results =
      bench::sweep(cfgs, [](Experiment& exp, sweep::SweepResult& r) {
        const auto& ps = exp.receiver().pcie().stats();
        r.extra["ddio_hit_pct"] =
            ps.write_tlps > 0 ? 100.0 * static_cast<double>(ps.ddio_write_hits) /
                                    static_cast<double>(ps.write_tlps)
                              : 0.0;
      });
  for (const auto& r : results) {
    const Metrics& m = r.metrics;
    t.add_row({r.config.data_region.mib(),
               std::string(r.config.ddio.enabled ? "on" : "off"),
               m.app_throughput_gbps, r.extra.at("ddio_hit_pct"),
               m.memory.by_class_gbytes_per_sec[static_cast<int>(mem::MemClass::kNicDma)],
               m.memory.by_class_gbytes_per_sec[static_cast<int>(mem::MemClass::kCpuCopy)],
               m.drop_rate * 100.0});
  }
  bench::finish(t, "ablation_ddio.csv");
  bench::save_json(results, "ablation_ddio.json");
  return 0;
}
