// Ablation A2: PCIe posted-credit pool size.
//
// The paper's model bounds throughput by C*pkt/(Tbase + M*Tmiss): more
// credits (larger C) keep more DMA bytes in flight and ride out
// per-packet latency inflation. Sweeping the credit pool at a fixed
// IOMMU-contended workload quantifies that design margin.
#include <vector>

#include "bench_util.h"

using namespace hicc;

int main() {
  bench::header(
      "Ablation A2", "PCIe posted-credit pool sweep (14 receiver cores, IOMMU ON)",
      "throughput rises with the credit pool until translation serialization "
      "(not credit return) becomes the binding constraint");

  Table t({"credit_kib", "app_gbps", "drop_pct", "misses_per_pkt",
           "translation_stalls"});
  std::vector<ExperimentConfig> cfgs;
  for (int kib : {4, 8, 16, 32, 64}) {
    ExperimentConfig cfg = bench::base_config();
    cfg.rx_threads = 14;
    cfg.pcie.credit_bytes = Bytes(kib * 1024);
    cfgs.push_back(cfg);
  }

  const auto results = bench::sweep(cfgs);
  for (const auto& r : results) {
    const Metrics& m = r.metrics;
    t.add_row({r.config.pcie.credit_bytes.count() / 1024, m.app_throughput_gbps,
               m.drop_rate * 100.0, m.iotlb_misses_per_packet,
               m.pcie_translation_stalls});
  }
  bench::finish(t, "ablation_pcie_credits.csv");
  bench::save_json(results, "ablation_pcie_credits.json");
  return 0;
}
