// Engine micro-benchmarks (google-benchmark): the hot paths that bound
// how much simulated traffic per wall-second the harness can sustain.
//
// Doubles as the perf-regression harness: `--json=PATH` writes a
// `hicc.bench.v1` JSON (ns/op, items/s, allocs/op, iterations) that CI
// compares against the committed BENCH_ENGINE.json baseline — see
// docs/PERFORMANCE.md for how to refresh it.
#include <benchmark/benchmark.h>

#include <atomic>
#include <cstdint>
#include <cstdlib>
#include <deque>
#include <fstream>
#include <new>
#include <string>
#include <string_view>
#include <vector>

#include "common/fmt.h"
#include "common/rng.h"
#include "core/experiment.h"
#include "iommu/lru_cache.h"
#include "mem/memory_system.h"
#include "sim/simulator.h"

// ---------------------------------------------------------------------------
// Counting allocator hook: every global operator new bumps g_allocs, so each
// benchmark can report exact heap allocations per iteration ("allocs_per_op").
// Constant-initialized so it is valid before any static-init allocation.
static std::atomic<std::uint64_t> g_allocs{0};

static void* counted_alloc(std::size_t n) {
  g_allocs.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(n ? n : 1)) return p;
  throw std::bad_alloc();
}

void* operator new(std::size_t n) { return counted_alloc(n); }
void* operator new[](std::size_t n) { return counted_alloc(n); }
void* operator new(std::size_t n, std::align_val_t a) {
  g_allocs.fetch_add(1, std::memory_order_relaxed);
  const auto align = static_cast<std::size_t>(a);
  const std::size_t rounded = (n + align - 1) / align * align;
  if (void* p = std::aligned_alloc(align, rounded ? rounded : align)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t n, std::align_val_t a) {
  return ::operator new(n, a);
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }

namespace {

using namespace hicc;
using namespace hicc::literals;

/// Snapshot g_allocs around the timed loop and report the average as an
/// `allocs_per_op` user counter (also picked up by the --json reporter).
class AllocTally {
 public:
  explicit AllocTally(benchmark::State& state)
      : state_(state), start_(g_allocs.load(std::memory_order_relaxed)) {}
  ~AllocTally() {
    const std::uint64_t delta =
        g_allocs.load(std::memory_order_relaxed) - start_;
    state_.counters["allocs_per_op"] = benchmark::Counter(
        static_cast<double>(delta), benchmark::Counter::kAvgIterations);
  }

 private:
  benchmark::State& state_;
  std::uint64_t start_;
};

/// Pure-arithmetic calibration loop (no memory traffic). CI normalizes the
/// engine benches against this so the regression threshold is comparable
/// across machines of different speeds.
void BM_ReferenceSpin(benchmark::State& state) {
  std::uint64_t x = 0x9e3779b97f4a7c15ull;
  for (auto _ : state) {
    for (int i = 0; i < 64; ++i) {  // splitmix64 finalizer, fixed work
      x ^= x >> 30;
      x *= 0xbf58476d1ce4e5b9ull;
      x ^= x >> 27;
      x *= 0x94d049bb133111ebull;
      x ^= x >> 31;
    }
    benchmark::DoNotOptimize(x);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_ReferenceSpin);

/// Event queue: schedule + run one event (the per-TLP cost floor).
void BM_SimulatorScheduleRun(benchmark::State& state) {
  sim::Simulator sim;
  std::int64_t t = 0;
  sim.at(TimePs(t += 100), [] {});  // warm the queue's internal storage
  sim.run_one();
  AllocTally tally(state);
  for (auto _ : state) {
    sim.at(TimePs(t += 100), [] {});
    sim.run_one();
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_SimulatorScheduleRun);

/// Event queue under depth: 1k pending events.
void BM_SimulatorDeepQueue(benchmark::State& state) {
  sim::Simulator sim;
  std::int64_t t = 0;
  for (int i = 0; i < 1000; ++i) sim.at(TimePs(t += 1000), [] {});
  AllocTally tally(state);
  for (auto _ : state) {
    sim.at(TimePs(t += 1000), [] {});
    sim.run_one();
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_SimulatorDeepQueue);

/// Timer churn: the Swift RTO/pacing pattern — a pool of armed far-future
/// timers where each step cancels one and rearms it further out, with a
/// periodic drain that pops the accumulated tombstones (no timer ever fires).
void BM_SimulatorTimerChurn(benchmark::State& state) {
  constexpr int kTimers = 512;
  sim::Simulator sim;
  std::vector<sim::EventId> ids(kTimers);
  std::int64_t now = 0;
  for (int i = 0; i < kTimers; ++i)
    ids[static_cast<std::size_t>(i)] = sim.at(TimePs(1'000'000 + 997 * i), [] {});
  std::size_t next = 0;
  AllocTally tally(state);
  for (auto _ : state) {
    sim.cancel(ids[next]);
    now += 211;
    ids[next] = sim.at(TimePs(now + 1'000'000), [] {});  // rearm ~1us out
    if (++next == kTimers) {
      next = 0;
      sim.run_until(TimePs(now));  // all live timers are still >1us away
    }
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_SimulatorTimerChurn);

/// Cancellation against a deep queue: 10k pending, every step cancels the
/// front event, schedules two replacements, and executes one.
void BM_SimulatorDeepCancellation(benchmark::State& state) {
  sim::Simulator sim;
  std::deque<sim::EventId> ids;
  std::int64_t t = 0;
  for (int i = 0; i < 10'000; ++i) ids.push_back(sim.at(TimePs(t += 499), [] {}));
  AllocTally tally(state);
  for (auto _ : state) {
    ids.push_back(sim.at(TimePs(t += 499), [] {}));
    ids.push_back(sim.at(TimePs(t += 499), [] {}));
    sim.cancel(ids.front());
    ids.pop_front();
    sim.run_one();  // executes the (new) front event
    ids.pop_front();
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_SimulatorDeepCancellation);

/// Whole-experiment macro bench: a small congested run end to end;
/// items/s is simulator events per wall-second across all layers.
void BM_ExperimentEventRate(benchmark::State& state) {
  std::int64_t events = 0;
  for (auto _ : state) {
    ExperimentConfig cfg;
    cfg.num_senders = 8;
    cfg.rx_threads = 4;
    cfg.warmup = TimePs::from_us(200);
    cfg.measure = TimePs::from_ms(2);
    Experiment exp(cfg);
    const Metrics m = exp.run();
    events += static_cast<std::int64_t>(m.events_executed);
    benchmark::DoNotOptimize(events);
  }
  state.SetItemsProcessed(events);
}
BENCHMARK(BM_ExperimentEventRate)->Unit(benchmark::kMillisecond);

/// IOTLB lookup hit (the per-TLP translation fast path).
void BM_IotlbLookupHit(benchmark::State& state) {
  iommu::LruCache<std::uint64_t> cache(1, 128);
  for (std::uint64_t i = 0; i < 128; ++i) cache.insert(i);
  std::uint64_t key = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(cache.lookup(key));
    key = (key + 1) % 128;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_IotlbLookupHit);

/// IOTLB thrash (insert + evict on every access).
void BM_IotlbThrash(benchmark::State& state) {
  iommu::LruCache<std::uint64_t> cache(1, 128);
  std::uint64_t key = 0;
  for (auto _ : state) {
    if (!cache.lookup(key)) cache.insert(key);
    key = (key + 1) % 512;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_IotlbThrash);

/// Discrete memory request sampling.
void BM_MemoryRequest(benchmark::State& state) {
  sim::Simulator sim;
  mem::MemorySystem mem(sim, mem::DramParams{}, Rng(1));
  for (auto _ : state) {
    benchmark::DoNotOptimize(mem.request(mem::MemClass::kNicDma, 256_B, false));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_MemoryRequest);

/// Fluid solver epoch (bisection fixed point with 3 clients).
void BM_MemoryEpochSolve(benchmark::State& state) {
  sim::Simulator sim;
  mem::MemorySystem mem(sim, mem::DramParams{}, Rng(1), 5_us);
  mem.add_closed_loop(mem::MemClass::kAntagonist, 12,
                      BitRate::gigabytes_per_sec(8.5), Bytes(2048), 0.67);
  const auto open = mem.add_open(mem::MemClass::kCpuCopy, 1.0);
  mem.set_demand(open, BitRate::gigabytes_per_sec(3.0));
  TimePs t{};
  for (auto _ : state) {
    t += 5_us;
    sim.run_until(t);  // executes exactly one epoch
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_MemoryEpochSolve);

// ---------------------------------------------------------------------------
// `hicc.bench.v1` JSON output. A tee reporter keeps the normal console
// output and collects one row per benchmark for --json=PATH.

class JsonTeeReporter : public benchmark::ConsoleReporter {
 public:
  struct Row {
    std::string name;
    double ns_per_op = 0;
    double items_per_sec = 0;
    double allocs_per_op = 0;
    std::int64_t iterations = 0;
  };

  void ReportRuns(const std::vector<Run>& report) override {
    for (const Run& r : report) {
      if (r.run_type != Run::RT_Iteration || r.error_occurred) continue;
      Row row;
      row.name = r.benchmark_name();
      const double iters =
          r.iterations > 0 ? static_cast<double>(r.iterations) : 1.0;
      row.ns_per_op = r.real_accumulated_time / iters * 1e9;
      row.iterations = r.iterations;
      if (auto it = r.counters.find("items_per_second"); it != r.counters.end())
        row.items_per_sec = it->second;
      if (auto it = r.counters.find("allocs_per_op"); it != r.counters.end())
        row.allocs_per_op = it->second;
      rows_.push_back(std::move(row));
    }
    ConsoleReporter::ReportRuns(report);
  }

  bool write_json(const std::string& path) const {
    std::ofstream os(path);
    if (!os) return false;
    os << "{\"schema\": \"hicc.bench.v1\",\n\"benchmarks\": [\n";
    for (std::size_t i = 0; i < rows_.size(); ++i) {
      const Row& r = rows_[i];
      os << " {\"name\": \"" << r.name << "\", \"ns_per_op\": ";
      put_double(os, r.ns_per_op);
      os << ", \"items_per_sec\": ";
      put_double(os, r.items_per_sec);
      os << ", \"allocs_per_op\": ";
      put_double(os, r.allocs_per_op);
      os << ", \"iterations\": " << r.iterations << "}";
      os << (i + 1 < rows_.size() ? ",\n" : "\n");
    }
    os << "]}\n";
    return os.good();
  }

 private:
  std::vector<Row> rows_;
};

}  // namespace

int main(int argc, char** argv) {
  std::string json_path;
  std::vector<char*> args;
  for (int i = 0; i < argc; ++i) {
    const std::string_view a = argv[i];
    if (a.rfind("--json=", 0) == 0) {
      json_path = std::string(a.substr(7));
    } else {
      args.push_back(argv[i]);
    }
  }
  int filtered_argc = static_cast<int>(args.size());
  args.push_back(nullptr);
  benchmark::Initialize(&filtered_argc, args.data());
  if (benchmark::ReportUnrecognizedArguments(filtered_argc, args.data()))
    return 1;
  JsonTeeReporter reporter;
  benchmark::RunSpecifiedBenchmarks(&reporter);
  benchmark::Shutdown();
  if (!json_path.empty() && !reporter.write_json(json_path)) {
    std::fprintf(stderr, "micro_engine: cannot write %s\n", json_path.c_str());
    return 1;
  }
  return 0;
}
