// Engine micro-benchmarks (google-benchmark): the hot paths that bound
// how much simulated traffic per wall-second the harness can sustain.
#include <benchmark/benchmark.h>

#include "common/rng.h"
#include "iommu/lru_cache.h"
#include "mem/memory_system.h"
#include "sim/simulator.h"

namespace {

using namespace hicc;
using namespace hicc::literals;

/// Event queue: schedule + run one event (the per-TLP cost floor).
void BM_SimulatorScheduleRun(benchmark::State& state) {
  sim::Simulator sim;
  std::int64_t t = 0;
  for (auto _ : state) {
    sim.at(TimePs(t += 100), [] {});
    sim.run_one();
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_SimulatorScheduleRun);

/// Event queue under depth: 1k pending events.
void BM_SimulatorDeepQueue(benchmark::State& state) {
  sim::Simulator sim;
  std::int64_t t = 0;
  for (int i = 0; i < 1000; ++i) sim.at(TimePs(t += 1000), [] {});
  for (auto _ : state) {
    sim.at(TimePs(t += 1000), [] {});
    sim.run_one();
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_SimulatorDeepQueue);

/// IOTLB lookup hit (the per-TLP translation fast path).
void BM_IotlbLookupHit(benchmark::State& state) {
  iommu::LruCache<std::uint64_t> cache(1, 128);
  for (std::uint64_t i = 0; i < 128; ++i) cache.insert(i);
  std::uint64_t key = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(cache.lookup(key));
    key = (key + 1) % 128;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_IotlbLookupHit);

/// IOTLB thrash (insert + evict on every access).
void BM_IotlbThrash(benchmark::State& state) {
  iommu::LruCache<std::uint64_t> cache(1, 128);
  std::uint64_t key = 0;
  for (auto _ : state) {
    if (!cache.lookup(key)) cache.insert(key);
    key = (key + 1) % 512;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_IotlbThrash);

/// Discrete memory request sampling.
void BM_MemoryRequest(benchmark::State& state) {
  sim::Simulator sim;
  mem::MemorySystem mem(sim, mem::DramParams{}, Rng(1));
  for (auto _ : state) {
    benchmark::DoNotOptimize(mem.request(mem::MemClass::kNicDma, 256_B, false));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_MemoryRequest);

/// Fluid solver epoch (bisection fixed point with 3 clients).
void BM_MemoryEpochSolve(benchmark::State& state) {
  sim::Simulator sim;
  mem::MemorySystem mem(sim, mem::DramParams{}, Rng(1), 5_us);
  mem.add_closed_loop(mem::MemClass::kAntagonist, 12,
                      BitRate::gigabytes_per_sec(8.5), Bytes(2048), 0.67);
  const auto open = mem.add_open(mem::MemClass::kCpuCopy, 1.0);
  mem.set_demand(open, BitRate::gigabytes_per_sec(3.0));
  TimePs t{};
  for (auto _ : state) {
    t += 5_us;
    sim.run_until(t);  // executes exactly one epoch
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_MemoryEpochSolve);

}  // namespace

BENCHMARK_MAIN();
