// Ablation A1 (§4 "rethinking host architecture"): IOTLB capacity.
//
// IOTLB sizes are one of the stagnant resources the paper calls out.
// Sweeping capacity at a fixed 12-thread workload shows the congestion
// disappearing once the registered working set fits -- the
// architectural fix the paper's ATS/offload discussion points toward.
#include <vector>

#include "bench_util.h"

using namespace hicc;

int main() {
  bench::header(
      "Ablation A1", "IOTLB capacity sweep (12 receiver cores, IOMMU ON)",
      "misses per packet and throughput loss vanish once capacity covers the "
      "~168-entry working set (12 threads x ~14 pages)");

  Table t({"iotlb_entries", "app_gbps", "drop_pct", "misses_per_pkt",
           "host_delay_p99_us"});
  std::vector<ExperimentConfig> cfgs;
  for (int entries : {32, 64, 128, 256, 512, 1024}) {
    ExperimentConfig cfg = bench::base_config();
    cfg.rx_threads = 12;
    cfg.iommu.iotlb_entries = entries;
    cfgs.push_back(cfg);
  }

  const auto results = bench::sweep(cfgs);
  for (const auto& r : results) {
    const Metrics& m = r.metrics;
    t.add_row({std::int64_t{r.config.iommu.iotlb_entries}, m.app_throughput_gbps,
               m.drop_rate * 100.0, m.iotlb_misses_per_packet, m.host_delay_p99_us});
  }
  bench::finish(t, "ablation_iotlb_size.csv");
  bench::save_json(results, "ablation_iotlb_size.json");
  return 0;
}
