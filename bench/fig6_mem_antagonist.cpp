// Figure 6: memory-bus-induced host congestion.
//
// A STREAM-like antagonist contends the memory bus (one instance per
// physical core, up to 15). Reproduces the three panels: total memory
// bandwidth bars, NIC-to-CPU throughput for IOMMU OFF and ON, and drop
// rates. 12 receiver threads, 40 senders (§3.2's setup).
//
// The antagonist is driven by the fault engine (docs/FAULTS.md): a
// permanent `mem.antagonist@0` script entry ramps the cores at time
// zero, so the same injector that powers dynamic scenarios produces the
// figure's static sweep, and each point's scenario is recorded in the
// sweep JSON's "faults" field.
#include <string>
#include <vector>

#include "bench_util.h"
#include "fault/script.h"

using namespace hicc;

int main() {
  bench::header(
      "Figure 6", "memory bandwidth / throughput / drop rate vs STREAM "
                  "antagonist cores (12 receiver cores)",
      "memory bandwidth saturates near ~90GB/s around 10 cores; IOMMU OFF "
      "throughput degrades ~15-20% once the bus saturates (write-buffer "
      "backpressure); IOMMU ON starts lower and degrades earlier/deeper "
      "(walks slow down too); drops rise while the CC protocol is blind, "
      "then shrink as host delay crosses the 100us target");

  Table t({"antagonist_cores", "mem_total_gbs_off", "mem_total_gbs_on",
           "app_gbps_iommu_off", "app_gbps_iommu_on", "drop_pct_off", "drop_pct_on"});

  const std::vector<int> antagonists = {0, 1, 2, 4, 6, 8, 10, 12, 14, 15};
  std::vector<ExperimentConfig> cfgs;
  for (int a : antagonists) {
    ExperimentConfig off = bench::base_config();
    off.rx_threads = 12;
    off.iommu_enabled = false;
    if (a > 0) {
      off.faults =
          fault::parse_script("mem.antagonist@0,cores=" + std::to_string(a)).script;
    }
    ExperimentConfig on = off;
    on.iommu_enabled = true;
    cfgs.push_back(off);
    cfgs.push_back(on);
  }

  const auto results = bench::sweep(cfgs);
  for (std::size_t i = 0; i < antagonists.size(); ++i) {
    const Metrics& moff = results[2 * i].metrics;
    const Metrics& mon = results[2 * i + 1].metrics;
    t.add_row({std::int64_t{antagonists[i]}, moff.memory.total_gbytes_per_sec,
               mon.memory.total_gbytes_per_sec, moff.app_throughput_gbps,
               mon.app_throughput_gbps, moff.drop_rate * 100.0, mon.drop_rate * 100.0});
  }
  bench::finish(t, "fig6_mem_antagonist.csv");
  bench::save_json(results, "fig6_mem_antagonist.json");
  return 0;
}
