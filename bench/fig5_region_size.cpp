// Figure 5: provisioning larger Rx memory regions (BDP growth).
//
// Larger registered regions mean more pages per thread competing for
// the IOTLB: misses per packet grow with region size and NIC-to-CPU
// throughput falls, while the IOMMU-OFF case is flat. 12 receiver
// threads (the paper's fig-5 setup), 2M hugepages.
#include <vector>

#include "bench_util.h"

using namespace hicc;

int main() {
  bench::header(
      "Figure 5", "throughput / drop rate / IOTLB misses vs Rx region size "
                  "(12 receiver cores)",
      "IOMMU OFF flat at 92Gbps; IOMMU ON falls with region size as misses per "
      "packet climb from ~0.5 to ~2; drop rate shrinks at the largest region "
      "because host delay crosses the CC's 100us target");

  Table t({"region_mb", "app_gbps_iommu_on", "app_gbps_iommu_off", "drop_pct_on",
           "drop_pct_off", "misses_per_pkt_on"});

  const std::vector<int> regions_mb = {4, 8, 12, 16};
  std::vector<ExperimentConfig> cfgs;
  for (int mb : regions_mb) {
    ExperimentConfig on = bench::base_config();
    on.rx_threads = 12;
    on.data_region = Bytes::mib(mb);
    on.iommu_enabled = true;
    ExperimentConfig off = on;
    off.iommu_enabled = false;
    cfgs.push_back(on);
    cfgs.push_back(off);
  }

  const auto results = bench::sweep(cfgs);
  for (std::size_t i = 0; i < regions_mb.size(); ++i) {
    const Metrics& mon = results[2 * i].metrics;
    const Metrics& moff = results[2 * i + 1].metrics;
    t.add_row({std::int64_t{regions_mb[i]}, mon.app_throughput_gbps,
               moff.app_throughput_gbps, mon.drop_rate * 100.0,
               moff.drop_rate * 100.0, mon.iotlb_misses_per_packet});
  }
  bench::finish(t, "fig5_region_size.csv");
  bench::save_json(results, "fig5_region_size.json");
  return 0;
}
