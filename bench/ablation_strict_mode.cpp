// Ablation A9 (§3.1's setup note): strict vs loose IOMMU mode.
//
// The paper's stack runs loose mode -- map once, never invalidate --
// because "dynamically deleting IOMMU mappings at run time [is] known
// to cause even worse IOTLB misses". Strict mode revokes each buffer's
// translation on delivery: every payload access walks, and the
// invalidation commands contend with translations for the IOMMU's
// command pipeline.
#include "bench_util.h"

using namespace hicc;

int main() {
  bench::header(
      "Ablation A9", "loose (pin once) vs strict (invalidate per buffer) IOMMU",
      "strict mode forces >=1 IOTLB miss per packet at every core count and "
      "adds invalidation-command pressure; loose mode only degrades once the "
      "working set outgrows the IOTLB");

  Table t({"cores", "app_gbps_loose", "app_gbps_strict", "misses_loose",
           "misses_strict", "invalidations_per_pkt"});
  for (int c : {4, 8, 12, 16}) {
    ExperimentConfig loose = bench::base_config();
    loose.rx_threads = c;
    ExperimentConfig strict = loose;
    strict.strict_iommu = true;

    const Metrics ml = bench::run(loose);
    Experiment strict_exp(strict);
    const Metrics ms = strict_exp.run();
    const auto& is = strict_exp.receiver().iommu().stats();
    const double inv_per_pkt =
        ms.delivered_packets > 0
            ? static_cast<double>(is.invalidations) /
                  static_cast<double>(strict_exp.receiver().nic().stats().delivered)
            : 0.0;
    t.add_row({std::int64_t{c}, ml.app_throughput_gbps, ms.app_throughput_gbps,
               ml.iotlb_misses_per_packet, ms.iotlb_misses_per_packet, inv_per_pkt});
  }
  bench::finish(t, "ablation_strict_mode.csv");
  return 0;
}
