// Ablation A9 (§3.1's setup note): strict vs loose IOMMU mode.
//
// The paper's stack runs loose mode -- map once, never invalidate --
// because "dynamically deleting IOMMU mappings at run time [is] known
// to cause even worse IOTLB misses". Strict mode revokes each buffer's
// translation on delivery: every payload access walks, and the
// invalidation commands contend with translations for the IOMMU's
// command pipeline.
#include <vector>

#include "bench_util.h"

using namespace hicc;

int main() {
  bench::header(
      "Ablation A9", "loose (pin once) vs strict (invalidate per buffer) IOMMU",
      "strict mode forces >=1 IOTLB miss per packet at every core count and "
      "adds invalidation-command pressure; loose mode only degrades once the "
      "working set outgrows the IOTLB");

  Table t({"cores", "app_gbps_loose", "app_gbps_strict", "misses_loose",
           "misses_strict", "invalidations_per_pkt"});
  const std::vector<int> cores = {4, 8, 12, 16};
  std::vector<ExperimentConfig> cfgs;
  for (int c : cores) {
    ExperimentConfig loose = bench::base_config();
    loose.rx_threads = c;
    ExperimentConfig strict = loose;
    strict.strict_iommu = true;
    cfgs.push_back(loose);
    cfgs.push_back(strict);
  }

  const auto results =
      bench::sweep(cfgs, [](Experiment& exp, sweep::SweepResult& r) {
        const auto delivered = exp.receiver().nic().stats().delivered;
        r.extra["invalidations_per_pkt"] =
            delivered > 0 ? static_cast<double>(exp.receiver().iommu().stats().invalidations) /
                                static_cast<double>(delivered)
                          : 0.0;
      });
  for (std::size_t i = 0; i < cores.size(); ++i) {
    const Metrics& ml = results[2 * i].metrics;
    const sweep::SweepResult& strict = results[2 * i + 1];
    t.add_row({std::int64_t{cores[i]}, ml.app_throughput_gbps,
               strict.metrics.app_throughput_gbps, ml.iotlb_misses_per_packet,
               strict.metrics.iotlb_misses_per_packet,
               strict.extra.at("invalidations_per_pkt")});
  }
  bench::finish(t, "ablation_strict_mode.csv");
  bench::save_json(results, "ablation_strict_mode.json");
  return 0;
}
