// Ablation A3 (§4): "Simply using a lower host target delay would not
// resolve the problem: with CC protocols taking at least one RTT to
// respond to congestion, in-flight bytes can exceed NIC buffer sizes."
//
// Sweeping Swift's host target delay at an interconnect-congested
// operating point shows lower targets trading throughput away without
// eliminating drops.
#include <vector>

#include "bench_util.h"

using namespace hicc;

int main() {
  bench::header(
      "Ablation A3", "Swift host-target-delay sweep (14 receiver cores, IOMMU ON)",
      "drops persist even at aggressive (25-50us) targets -- the RTT-timescale "
      "response cannot protect a 1MB buffer -- while throughput falls");

  Table t({"host_target_us", "app_gbps", "drop_pct", "host_delay_p50_us",
           "host_delay_p99_us"});
  std::vector<ExperimentConfig> cfgs;
  for (int target_us : {25, 50, 100, 200, 400}) {
    ExperimentConfig cfg = bench::base_config();
    cfg.rx_threads = 14;
    cfg.swift.host_target = TimePs::from_us(target_us);
    cfgs.push_back(cfg);
  }

  const auto results = bench::sweep(cfgs);
  for (const auto& r : results) {
    const Metrics& m = r.metrics;
    t.add_row({static_cast<std::int64_t>(r.config.swift.host_target.us()),
               m.app_throughput_gbps, m.drop_rate * 100.0, m.host_delay_p50_us,
               m.host_delay_p99_us});
  }
  bench::finish(t, "ablation_target_delay.csv");
  bench::save_json(results, "ablation_target_delay.json");
  return 0;
}
