// Ablation A3 (§4): "Simply using a lower host target delay would not
// resolve the problem: with CC protocols taking at least one RTT to
// respond to congestion, in-flight bytes can exceed NIC buffer sizes."
//
// Sweeping Swift's host target delay at an interconnect-congested
// operating point shows lower targets trading throughput away without
// eliminating drops.
#include "bench_util.h"

using namespace hicc;

int main() {
  bench::header(
      "Ablation A3", "Swift host-target-delay sweep (14 receiver cores, IOMMU ON)",
      "drops persist even at aggressive (25-50us) targets -- the RTT-timescale "
      "response cannot protect a 1MB buffer -- while throughput falls");

  Table t({"host_target_us", "app_gbps", "drop_pct", "host_delay_p50_us",
           "host_delay_p99_us"});
  for (int target_us : {25, 50, 100, 200, 400}) {
    ExperimentConfig cfg = bench::base_config();
    cfg.rx_threads = 14;
    cfg.swift.host_target = TimePs::from_us(target_us);
    const Metrics m = bench::run(cfg);
    t.add_row({std::int64_t{target_us}, m.app_throughput_gbps, m.drop_rate * 100.0,
               m.host_delay_p50_us, m.host_delay_p99_us});
  }
  bench::finish(t, "ablation_target_delay.csv");
  return 0;
}
