// Topology micro-benchmarks (google-benchmark): the Clos-fabric hot
// paths and the whole-cluster event rate that bound how much multi-host
// simulated traffic per wall-second the harness can sustain.
//
// Doubles as the perf-regression harness for the cluster path:
// `--json=PATH` writes a `hicc.bench.topology.v1` JSON that CI compares
// against the committed BENCH_TOPOLOGY.json baseline with
// scripts/check_bench_regression.py — see docs/PERFORMANCE.md.
#include <benchmark/benchmark.h>

#include <atomic>
#include <cstdint>
#include <cstdlib>
#include <fstream>
#include <new>
#include <string>
#include <string_view>
#include <vector>

#include "common/fmt.h"
#include "core/cluster.h"
#include "net/topology.h"
#include "sim/simulator.h"

// ---------------------------------------------------------------------------
// Counting allocator hook (same shape as micro_engine's): every global
// operator new bumps g_allocs so benches can report exact heap
// allocations per iteration ("allocs_per_op").
static std::atomic<std::uint64_t> g_allocs{0};

static void* counted_alloc(std::size_t n) {
  g_allocs.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(n ? n : 1)) return p;
  throw std::bad_alloc();
}

void* operator new(std::size_t n) { return counted_alloc(n); }
void* operator new[](std::size_t n) { return counted_alloc(n); }
void* operator new(std::size_t n, std::align_val_t a) {
  g_allocs.fetch_add(1, std::memory_order_relaxed);
  const auto align = static_cast<std::size_t>(a);
  const std::size_t rounded = (n + align - 1) / align * align;
  if (void* p = std::aligned_alloc(align, rounded ? rounded : align)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t n, std::align_val_t a) {
  return ::operator new(n, a);
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }

namespace {

using namespace hicc;

/// Snapshot g_allocs around the timed loop and report the average as an
/// `allocs_per_op` user counter (also picked up by the --json reporter).
class AllocTally {
 public:
  explicit AllocTally(benchmark::State& state)
      : state_(state), start_(g_allocs.load(std::memory_order_relaxed)) {}
  ~AllocTally() {
    const std::uint64_t delta =
        g_allocs.load(std::memory_order_relaxed) - start_;
    state_.counters["allocs_per_op"] = benchmark::Counter(
        static_cast<double>(delta), benchmark::Counter::kAvgIterations);
  }

 private:
  benchmark::State& state_;
  std::uint64_t start_;
};

/// Pure-arithmetic calibration loop (no memory traffic), identical to
/// micro_engine's: the regression gate normalizes every bench against
/// this so thresholds are comparable across machines.
void BM_ReferenceSpin(benchmark::State& state) {
  std::uint64_t x = 0x9e3779b97f4a7c15ull;
  for (auto _ : state) {
    for (int i = 0; i < 64; ++i) {  // splitmix64 finalizer, fixed work
      x ^= x >> 30;
      x *= 0xbf58476d1ce4e5b9ull;
      x ^= x >> 27;
      x *= 0x94d049bb133111ebull;
      x ^= x >> 31;
    }
    benchmark::DoNotOptimize(x);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_ReferenceSpin);

/// Stateless ECMP spine choice: the pure per-packet routing hash,
/// executed once per inter-leaf packet at the leaf and again at the
/// spine. Must stay allocation-free.
void BM_ClosEcmpSpine(benchmark::State& state) {
  sim::Simulator sim;
  net::TopologyConfig cfg;
  cfg.leaves = 4;
  cfg.spines = 4;
  cfg.hosts_per_leaf = 8;
  net::ClosFabric fabric(sim, cfg, [](int, net::Packet) {});
  net::Packet p;
  p.sender = 3;
  p.dst = 17;
  std::int32_t flow = 0;
  AllocTally tally(state);
  for (auto _ : state) {
    p.flow = flow++ & 1023;
    benchmark::DoNotOptimize(fabric.ecmp_spine(p));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_ClosEcmpSpine);

/// Steady-state fabric forwarding: one inter-leaf data packet through
/// all four hops (uplink -> leaf-spine -> spine-leaf -> downlink),
/// paced so queues stay empty. Items/s is packets per wall-second;
/// after warmup the path must be allocation-free.
void BM_ClosFabricForward(benchmark::State& state) {
  sim::Simulator sim;
  net::TopologyConfig cfg;  // 2x2x8, defaults
  int delivered = 0;
  net::ClosFabric fabric(sim, cfg, [&delivered](int, net::Packet) { ++delivered; });
  std::int64_t now_ps = 0;
  const net::WireFormat wire;
  const auto step = [&] {
    net::Packet p;
    p.flow = 0;
    p.sender = 0;
    p.dst = 7;  // other leaf: the four-hop path
    p.payload = wire.mtu_payload;
    p.wire = wire.data_wire();
    p.sent_at = TimePs(now_ps);
    fabric.send_from_host(0, std::move(p));
    now_ps += 50'000'000;  // 50 us: far beyond the path's latency
    sim.run_until(TimePs(now_ps));
  };
  step();  // warm the queues' internal storage
  AllocTally tally(state);
  for (auto _ : state) step();
  state.SetItemsProcessed(delivered);
}
BENCHMARK(BM_ClosFabricForward);

/// Whole-cluster macro bench: a small 2-leaf/2-spine incast with a full
/// receiver host, end to end; items/s is simulator events per
/// wall-second across every layer including the Clos fabric.
void BM_ClusterIncastEventRate(benchmark::State& state) {
  std::int64_t events = 0;
  for (auto _ : state) {
    ClusterConfig cfg;
    cfg.topology.leaves = 2;
    cfg.topology.spines = 2;
    cfg.topology.hosts_per_leaf = 4;
    cfg.receivers = 1;
    cfg.host.rx_threads = 4;
    cfg.host.warmup = TimePs::from_us(200);
    cfg.host.measure = TimePs::from_ms(2);
    ClusterExperiment exp(std::move(cfg));
    const ClusterMetrics m = exp.run();
    events += static_cast<std::int64_t>(m.events_executed);
    benchmark::DoNotOptimize(events);
  }
  state.SetItemsProcessed(events);
}
BENCHMARK(BM_ClusterIncastEventRate)->Unit(benchmark::kMillisecond);

// ---------------------------------------------------------------------------
// `hicc.bench.topology.v1` JSON output: micro_engine's tee reporter with
// the topology schema tag, so the regression gate can tell the records
// apart.

class JsonTeeReporter : public benchmark::ConsoleReporter {
 public:
  struct Row {
    std::string name;
    double ns_per_op = 0;
    double items_per_sec = 0;
    double allocs_per_op = 0;
    std::int64_t iterations = 0;
  };

  void ReportRuns(const std::vector<Run>& report) override {
    for (const Run& r : report) {
      if (r.run_type != Run::RT_Iteration || r.error_occurred) continue;
      Row row;
      row.name = r.benchmark_name();
      const double iters =
          r.iterations > 0 ? static_cast<double>(r.iterations) : 1.0;
      row.ns_per_op = r.real_accumulated_time / iters * 1e9;
      row.iterations = r.iterations;
      if (auto it = r.counters.find("items_per_second"); it != r.counters.end())
        row.items_per_sec = it->second;
      if (auto it = r.counters.find("allocs_per_op"); it != r.counters.end())
        row.allocs_per_op = it->second;
      rows_.push_back(std::move(row));
    }
    ConsoleReporter::ReportRuns(report);
  }

  bool write_json(const std::string& path) const {
    std::ofstream os(path);
    if (!os) return false;
    os << "{\"schema\": \"hicc.bench.topology.v1\",\n\"benchmarks\": [\n";
    for (std::size_t i = 0; i < rows_.size(); ++i) {
      const Row& r = rows_[i];
      os << " {\"name\": \"" << r.name << "\", \"ns_per_op\": ";
      put_double(os, r.ns_per_op);
      os << ", \"items_per_sec\": ";
      put_double(os, r.items_per_sec);
      os << ", \"allocs_per_op\": ";
      put_double(os, r.allocs_per_op);
      os << ", \"iterations\": " << r.iterations << "}";
      os << (i + 1 < rows_.size() ? ",\n" : "\n");
    }
    os << "]}\n";
    return os.good();
  }

 private:
  std::vector<Row> rows_;
};

}  // namespace

int main(int argc, char** argv) {
  std::string json_path;
  std::vector<char*> args;
  for (int i = 0; i < argc; ++i) {
    const std::string_view a = argv[i];
    if (a.rfind("--json=", 0) == 0) {
      json_path = std::string(a.substr(7));
    } else {
      args.push_back(argv[i]);
    }
  }
  int filtered_argc = static_cast<int>(args.size());
  args.push_back(nullptr);
  benchmark::Initialize(&filtered_argc, args.data());
  if (benchmark::ReportUnrecognizedArguments(filtered_argc, args.data()))
    return 1;
  JsonTeeReporter reporter;
  benchmark::RunSpecifiedBenchmarks(&reporter);
  benchmark::Shutdown();
  if (!json_path.empty() && !reporter.write_json(json_path)) {
    std::fprintf(stderr, "micro_topology: cannot write %s\n", json_path.c_str());
    return 1;
  }
  return 0;
}
