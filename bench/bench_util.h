// Shared helpers for the figure-reproduction benches.
//
// Every bench binary prints: a header identifying the paper artifact it
// regenerates, an aligned table with the same series the paper plots,
// and a short note describing the expected (paper) shape. Each bench
// writes a CSV (named after the figure) plus a structured JSON sweep
// record into the working directory for plotting and machine diffing.
//
// Experiment points run through sweep::SweepRunner, so every bench is
// parallel across configurations: worker count comes from $HICC_JOBS
// (default: hardware concurrency), and results are bitwise-identical
// to a serial run. Set HICC_SMOKE=1 to shrink warmup/measure windows
// and sample counts for CI smoke runs.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <string>
#include <utility>
#include <vector>

#include "common/table.h"
#include "core/config.h"
#include "core/experiment.h"
#include "core/metrics.h"
#include "sweep/sweep.h"

namespace hicc::bench {

/// Prints the standard bench header.
inline void header(const std::string& artifact, const std::string& what,
                   const std::string& paper_shape) {
  std::cout << "==============================================================\n"
            << artifact << " -- " << what << "\n"
            << "Paper shape: " << paper_shape << "\n"
            << "==============================================================\n";
}

/// True when running as a CI smoke test (HICC_SMOKE set): benches trade
/// statistical power for wall-clock so they finish in seconds.
inline bool smoke() {
  const char* env = std::getenv("HICC_SMOKE");
  return env != nullptr && env[0] != '\0' && env[0] != '0';
}

/// Sample-count helper: the full figure's count, or the smoke-run one.
inline int samples(int full, int reduced) { return smoke() ? reduced : full; }

/// Runs one configuration serially and returns its metrics (kept for
/// incremental/example use; figure benches go through sweep()).
inline Metrics run(const ExperimentConfig& cfg) {
  Experiment exp(cfg);
  return exp.run();
}

/// Runs every configuration point on the sweep thread pool and returns
/// index-ordered results. `probe` (optional) harvests extra subsystem
/// counters per point while its Experiment is alive.
inline std::vector<sweep::SweepResult> sweep(
    std::vector<ExperimentConfig> points,
    std::function<void(Experiment&, sweep::SweepResult&)> probe = nullptr) {
  sweep::SweepOptions opts;
  opts.probe = std::move(probe);
  const sweep::SweepRunner runner(opts);
  return runner.run(std::move(points));
}

/// Prints the table and saves it as CSV; reports the CSV path.
inline void finish(const Table& table, const std::string& csv_name) {
  table.print(std::cout, 3);
  if (table.save_csv(csv_name)) {
    std::cout << "(series written to " << csv_name << ")\n";
  }
  std::cout << std::endl;
}

/// Saves the sweep's structured record next to the CSV; reports the path.
inline void save_json(const std::vector<sweep::SweepResult>& results,
                      const std::string& json_name) {
  if (sweep::save_json(results, json_name)) {
    std::cout << "(sweep record written to " << json_name << ")\n";
  }
}

/// Short-run defaults shared by the figure benches: long enough for the
/// congestion-control sawtooth to reach steady state, short enough that
/// a full figure regenerates in tens of seconds. Smoke runs shrink the
/// windows further.
inline ExperimentConfig base_config() {
  ExperimentConfig cfg;
  cfg.warmup = TimePs::from_ms(smoke() ? 2 : 10);
  cfg.measure = TimePs::from_ms(smoke() ? 4 : 20);
  return cfg;
}

}  // namespace hicc::bench
