// Shared helpers for the figure-reproduction benches.
//
// Every bench binary prints: a header identifying the paper artifact it
// regenerates, an aligned table with the same series the paper plots,
// and a short note describing the expected (paper) shape. Each bench
// also writes a CSV (named after the figure) into the working
// directory for plotting.
#pragma once

#include <cstdio>
#include <iostream>
#include <string>

#include "common/table.h"
#include "core/config.h"
#include "core/experiment.h"
#include "core/metrics.h"

namespace hicc::bench {

/// Prints the standard bench header.
inline void header(const std::string& artifact, const std::string& what,
                   const std::string& paper_shape) {
  std::cout << "==============================================================\n"
            << artifact << " -- " << what << "\n"
            << "Paper shape: " << paper_shape << "\n"
            << "==============================================================\n";
}

/// Runs one configuration and returns its metrics.
inline Metrics run(const ExperimentConfig& cfg) {
  Experiment exp(cfg);
  return exp.run();
}

/// Prints the table and saves it as CSV; reports the CSV path.
inline void finish(const Table& table, const std::string& csv_name) {
  table.print(std::cout, 3);
  if (table.save_csv(csv_name)) {
    std::cout << "(series written to " << csv_name << ")\n";
  }
  std::cout << std::endl;
}

/// Short-run defaults shared by the figure benches: long enough for the
/// congestion-control sawtooth to reach steady state, short enough that
/// a full figure regenerates in tens of seconds.
inline ExperimentConfig base_config() {
  ExperimentConfig cfg;
  cfg.warmup = TimePs::from_ms(10);
  cfg.measure = TimePs::from_ms(20);
  return cfg;
}

}  // namespace hicc::bench
