// Ablation A7 (§4a): PCIe Address Translation Services.
//
// "Alternative architectures to enable memory protection from the NIC,
// e.g., efficient offload of I/O address translation as in
// technologies like ATS." With ATS the NIC translates DMA addresses
// itself (device TLB, prefetched at packet arrival), so IOTLB misses
// never stall the root complex's ordered posted-write pipeline --
// memory protection stays on, the throughput ceiling goes away.
#include <vector>

#include "bench_util.h"

using namespace hicc;

int main() {
  bench::header(
      "Ablation A7", "PCIe ATS (device-side translation) vs baseline IOMMU",
      "ATS recovers the IOMMU-OFF throughput at every core count while "
      "keeping memory protection enabled; misses still happen but off the "
      "critical path");

  Table t({"cores", "app_gbps_iommu", "app_gbps_ats", "app_gbps_iommu_off",
           "drop_pct_iommu", "drop_pct_ats", "misses_per_pkt_iommu"});
  const std::vector<int> cores = {10, 12, 14, 16};
  std::vector<ExperimentConfig> cfgs;
  for (int c : cores) {
    ExperimentConfig base = bench::base_config();
    base.rx_threads = c;

    ExperimentConfig ats = base;
    ats.ats_enabled = true;

    ExperimentConfig off = base;
    off.iommu_enabled = false;

    cfgs.push_back(base);
    cfgs.push_back(ats);
    cfgs.push_back(off);
  }

  const auto results = bench::sweep(cfgs);
  for (std::size_t i = 0; i < cores.size(); ++i) {
    const Metrics& mb = results[3 * i].metrics;
    const Metrics& ma = results[3 * i + 1].metrics;
    const Metrics& mo = results[3 * i + 2].metrics;
    t.add_row({std::int64_t{cores[i]}, mb.app_throughput_gbps, ma.app_throughput_gbps,
               mo.app_throughput_gbps, mb.drop_rate * 100.0, ma.drop_rate * 100.0,
               mb.iotlb_misses_per_packet});
  }
  bench::finish(t, "ablation_ats.csv");
  bench::save_json(results, "ablation_ats.json");
  return 0;
}
