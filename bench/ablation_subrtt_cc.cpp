// Ablation A5 (§4): congestion-response comparison under host
// interconnect congestion.
//
//  * swift        -- the paper's protocol (delay-based, RTT response),
//  * tcp-like     -- loss-based AIMD ("the total in-flight bytes can
//                    still exceed NIC buffer capacity"),
//  * host-signal  -- Swift + sub-RTT multiplicative response to
//                    NIC-buffer congestion signals ("rethink the
//                    timescale of congestion response").
//
// Two operating points: IOMMU-contended (16 cores) and memory-bus
// contended (12 cores + 15 antagonists).
#include <vector>

#include "bench_util.h"

using namespace hicc;

namespace {
const char* cc_name(transport::CcAlgorithm cc) {
  switch (cc) {
    case transport::CcAlgorithm::kSwift: return "swift";
    case transport::CcAlgorithm::kTcpLike: return "tcp-like";
    case transport::CcAlgorithm::kHostSignal: return "swift+host-signal";
  }
  return "?";
}
}  // namespace

int main() {
  bench::header(
      "Ablation A5", "congestion-control comparison under host congestion "
                     "(senders kept backlogged: 8 outstanding reads per flow)",
      "the sub-RTT host signal eliminates drops at equal-or-better throughput; "
      "Swift bounds host delay near its 100us target but pays steady drops in "
      "the blind window; the loss-based baseline's drops grow with sender "
      "backlog (its in-flight bytes are bounded by nothing but loss)");

  Table t({"scenario", "protocol", "app_gbps", "drop_pct", "retransmits",
           "host_delay_p50_us", "host_delay_p99_us"});
  const transport::CcAlgorithm algos[] = {transport::CcAlgorithm::kSwift,
                                          transport::CcAlgorithm::kTcpLike,
                                          transport::CcAlgorithm::kHostSignal};
  std::vector<ExperimentConfig> cfgs;
  for (const bool memory_case : {false, true}) {
    for (const auto algo : algos) {
      ExperimentConfig cfg = bench::base_config();
      cfg.cc = algo;
      cfg.read_pipeline = 8;
      if (memory_case) {
        cfg.rx_threads = 12;
        cfg.iommu_enabled = false;
        cfg.antagonist_cores = 15;
      } else {
        cfg.rx_threads = 14;
        cfg.iommu_enabled = true;
      }
      cfgs.push_back(cfg);
    }
  }

  const auto results = bench::sweep(cfgs);
  for (std::size_t i = 0; i < results.size(); ++i) {
    const bool memory_case = i >= std::size(algos);
    const Metrics& m = results[i].metrics;
    t.add_row({std::string(memory_case ? "membus(15 antagonists)" : "iommu(14 cores)"),
               std::string(cc_name(results[i].config.cc)), m.app_throughput_gbps,
               m.drop_rate * 100.0, m.retransmits, m.host_delay_p50_us,
               m.host_delay_p99_us});
  }

  // The loss-based baseline's exposure scales with how much data the
  // application keeps pending: sweep the per-flow read pipeline.
  Table t2({"read_pipeline", "tcp_drop_pct", "swift_drop_pct"});
  const std::vector<int> pipelines = {1, 4, 8, 16};
  std::vector<ExperimentConfig> backlog_cfgs;
  for (int pipe : pipelines) {
    ExperimentConfig cfg = bench::base_config();
    cfg.rx_threads = 14;
    cfg.read_pipeline = pipe;
    cfg.cc = transport::CcAlgorithm::kTcpLike;
    backlog_cfgs.push_back(cfg);
    cfg.cc = transport::CcAlgorithm::kSwift;
    backlog_cfgs.push_back(cfg);
  }
  const auto backlog = bench::sweep(backlog_cfgs);
  for (std::size_t i = 0; i < pipelines.size(); ++i) {
    t2.add_row({std::int64_t{pipelines[i]}, backlog[2 * i].metrics.drop_rate * 100.0,
                backlog[2 * i + 1].metrics.drop_rate * 100.0});
  }
  bench::finish(t, "ablation_subrtt_cc.csv");
  bench::save_json(results, "ablation_subrtt_cc.json");
  std::cout << "Loss-based exposure vs application backlog:\n";
  bench::finish(t2, "ablation_subrtt_cc_backlog.csv");
  bench::save_json(backlog, "ablation_subrtt_cc_backlog.json");
  return 0;
}
