// Figure 1: host congestion across a fleet of hosts under load.
//
// The paper's Figure 1 is a 24-hour scatter of (access-link
// utilization, host drop rate) over a production cluster. We reproduce
// it from ONE simulated Clos cluster under an open-loop incast
// workload (src/workload): every receiver host runs bursty RPC
// arrivals with web-search flow sizes over a shared memory-bus
// antagonist, and each (receiver, measurement-window) pair contributes
// one scatter point -- the same way production samples the same
// machines across time. Two properties must hold:
//   1. drop rate is positively correlated with link utilization, and
//   2. drops occur even at low utilization (memory-bus congestion),
// and host drops must dominate fabric drops (loss lives at the host).
//
// Pass --monte-carlo for the legacy reproduction: a Monte-Carlo sweep
// over independent randomized single-host experiments (kept for
// comparison; the cluster mode exercises the real fabric, transport
// retransmissions, and cross-receiver interference the sweep cannot).
#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstring>
#include <string>
#include <vector>

#include "bench_util.h"
#include "common/rng.h"
#include "core/cluster.h"
#include "workload/engine.h"

using namespace hicc;

namespace {

struct ScatterPoint {
  int window = 0;
  int host = 0;
  double link_utilization = 0.0;
  double drop_rate = 0.0;
  double fct_p99_us = 0.0;
  std::int64_t active_flows = 0;
  std::int64_t fabric_drops = 0;
};

/// Prints the scatter table, the figure-claim statistics, and the CSV.
void report(std::vector<ScatterPoint> points, std::int64_t fabric_drops, double wall,
            double serial_wall) {
  double max_drop = 0.0;
  for (const ScatterPoint& p : points) max_drop = std::max(max_drop, p.drop_rate);

  Table t({"window", "host", "link_utilization", "normalized_drop_rate", "fct_p99_us",
           "active_flows"});
  for (const ScatterPoint& p : points) {
    t.add_row({std::int64_t{p.window}, std::int64_t{p.host}, p.link_utilization,
               max_drop > 0 ? p.drop_rate / max_drop : 0.0, p.fct_p99_us, p.active_flows});
  }
  bench::finish(t, "fig1_cluster_scatter.csv");

  double mu = 0, md = 0;
  for (const ScatterPoint& p : points) {
    mu += p.link_utilization;
    md += p.drop_rate;
  }
  mu /= static_cast<double>(points.size());
  md /= static_cast<double>(points.size());
  double cov = 0, vu = 0, vd = 0;
  int low_util_with_drops = 0, with_drops = 0;
  for (const ScatterPoint& p : points) {
    const double u = p.link_utilization;
    const double d = p.drop_rate;
    cov += (u - mu) * (d - md);
    vu += (u - mu) * (u - mu);
    vd += (d - md) * (d - md);
    if (d > 0.0005) {
      ++with_drops;
      if (u < 0.6) ++low_util_with_drops;
    }
  }
  const double corr = (vu > 0 && vd > 0) ? cov / std::sqrt(vu * vd) : 0.0;
  std::printf("samples: %zu\n", points.size());
  std::printf("utilization-drop correlation: %.3f (paper: positive)\n", corr);
  std::printf("points with drops: %d, of which at <60%% utilization: %d "
              "(paper: drops happen even at low utilization)\n",
              with_drops, low_util_with_drops);
  std::printf("fabric drops across the run: %lld (paper: loss lives at the hosts)\n",
              static_cast<long long>(fabric_drops));
  std::printf("wall-clock: %.2fs across %d worker(s); serial equivalent: %.2fs\n\n", wall,
              sweep::SweepRunner::resolve_jobs(0), serial_wall);
}

/// Default mode: one Clos cluster, every receiver under open-loop
/// bursty incast, scatter points harvested per (receiver, window).
int run_cluster_mode() {
  bench::header(
      "Figure 1",
      "scatter of access-link utilization vs normalized host drop rate, one "
      "cluster under open-loop incast load, sampled per receiver per window",
      "positive correlation between utilization and drops; a distinct "
      "population of low-utilization points with non-zero drops; loss "
      "concentrated at hosts, not the fabric");

  ClusterConfig cfg;
  cfg.host = bench::base_config();
  cfg.host.seed = 2022;
  // The production fleet of Fig. 1 runs a loss-based stack: flows push
  // until packets drop at the host. (Swift-style delay CC is the
  // paper's §4 mitigation and hides exactly the signal this figure
  // demonstrates.)
  cfg.host.cc = transport::CcAlgorithm::kTcpLike;
  cfg.host.rx_threads = 12;
  cfg.topology.leaves = bench::smoke() ? 2 : 4;
  cfg.topology.spines = 2;
  cfg.topology.hosts_per_leaf = bench::smoke() ? 4 : 6;
  // Fat leaf-spine links and deep-buffered ToR ports keep the fabric
  // non-blocking: congestion in this figure must form at the hosts
  // (the NIC's 1MB SRAM), not the interconnect.
  cfg.topology.fabric_link_rate = BitRate::gbps(400);
  cfg.topology.edge_buffer = Bytes::mib(64);
  cfg.topology.fabric_buffer = Bytes::mib(64);
  cfg.receivers = bench::smoke() ? 2 : 8;
  // Heterogeneous fleet: every host co-locates some memory-heavy
  // batch work (production co-location), so NIC DMA drain -- not the
  // access link -- is the contended resource. Lightly-loaded hosts
  // cross the memory ceiling only when bursts push arrival near line
  // rate (drops correlate with utilization); the heaviest hosts sit
  // close to the ceiling at rest and drop even at low utilization.
  if (bench::smoke()) {
    cfg.antagonist_profile = {12, 7};
  } else {
    cfg.antagonist_profile = {12, 10, 8, 8, 7, 7, 7, 7};
  }
  cfg.parallelism = sweep::SweepRunner::resolve_jobs(0);
  cfg.workload.pattern = workload::Pattern::kIncast;
  cfg.workload.arrival = workload::Arrival::kBursty;
  // Burst periods LONGER than the measurement window play the role of
  // the paper's diurnal traffic variation: whole windows land in the
  // on- or off-phase, spreading the scatter across the utilization
  // axis. f * burst_factor < 1 keeps the off-state rate positive, so
  // the long-run mean stays rate_per_s while bursts run 3x hotter;
  // 7ms is deliberately incommensurate with the 3ms window.
  cfg.workload.burst_factor = 3.0;
  cfg.workload.burst_on_fraction = 0.3;
  cfg.workload.burst_period = TimePs::from_us(bench::smoke() ? 1500 : 7000);
  cfg.workload.size_dist = workload::SizeDist::kWebSearch;
  cfg.workload.rate_per_s = 12e3;
  cfg.workload.fanout = bench::smoke() ? 4 : 8;
  cfg.workload.max_active = 768;

  const int kWindows = bench::samples(14, 3);
  const TimePs kWindow = TimePs::from_ms(bench::smoke() ? 2 : 3);

  const auto t0 = std::chrono::steady_clock::now();
  ClusterExperiment exp(cfg);
  const auto advance_to = [&exp](TimePs t) {
    if (exp.engine() != nullptr) {
      exp.engine()->run_until(t);
    } else {
      exp.simulator().run_until(t);
    }
  };
  exp.start();
  TimePs now = cfg.host.warmup;
  advance_to(now);

  std::vector<ScatterPoint> points;
  points.reserve(static_cast<std::size_t>(kWindows * exp.num_receivers()));
  std::int64_t fabric_drops = 0;
  for (int w = 0; w < kWindows; ++w) {
    exp.begin_window();
    now = now + kWindow;
    advance_to(now);
    const ClusterMetrics cm = exp.snapshot();
    fabric_drops += cm.total_fabric_drops;
    for (int r = 0; r < exp.num_receivers(); ++r) {
      const Metrics& m = cm.per_receiver[static_cast<std::size_t>(r)];
      ScatterPoint p;
      p.window = w;
      p.host = r;
      p.link_utilization = m.link_utilization;
      p.drop_rate = m.drop_rate;
      const workload::WorkloadEngine* engine = exp.workload_engine(r);
      p.fct_p99_us = engine->fct_us().quantile(0.99);
      p.active_flows = engine->active_flows();
      p.fabric_drops = cm.total_fabric_drops;
      points.push_back(p);
    }
  }
  const double wall =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
  report(std::move(points), fabric_drops, wall, wall);
  return 0;
}

/// Legacy mode (--monte-carlo): independent randomized single-host
/// experiments on the sweep pool.
int run_monte_carlo_mode() {
  bench::header(
      "Figure 1 (legacy Monte-Carlo mode)",
      "scatter of access-link utilization vs normalized host drop "
      "rate over randomized independent host configurations",
      "positive correlation between utilization and drops; a distinct "
      "population of low-utilization points with non-zero drops; zero fabric "
      "drops (all loss is at hosts)");

  const int kSamples = bench::samples(110, 12);
  Rng rng(2022);  // deterministic sweep seed

  std::vector<ExperimentConfig> cfgs;
  cfgs.reserve(static_cast<std::size_t>(kSamples));
  for (int i = 0; i < kSamples; ++i) {
    ExperimentConfig cfg = bench::base_config();
    cfg.warmup = TimePs::from_ms(bench::smoke() ? 2 : 8);
    cfg.measure = TimePs::from_ms(bench::smoke() ? 4 : 12);
    cfg.seed = 1000 + static_cast<std::uint64_t>(i);
    cfg.rx_threads = static_cast<int>(rng.range(2, 16));
    cfg.num_senders = static_cast<int>(rng.range(8, 40));
    cfg.iommu_enabled = rng.chance(0.8);
    cfg.hugepages = rng.chance(0.85);
    cfg.data_region = Bytes::mib(static_cast<double>(rng.range(4, 16)));
    // Most hosts run little antagonism; a tail runs heavy batch jobs.
    cfg.antagonist_cores =
        rng.chance(0.55) ? 0 : static_cast<int>(rng.range(4, 15));
    cfgs.push_back(cfg);
  }

  const auto t0 = std::chrono::steady_clock::now();
  const auto results = bench::sweep(cfgs);
  const double wall = std::chrono::duration<double>(
                          std::chrono::steady_clock::now() - t0)
                          .count();

  std::int64_t fabric_drops = 0;
  double per_point_wall = 0.0;
  std::vector<ScatterPoint> points;
  points.reserve(results.size());
  for (const auto& r : results) {
    fabric_drops += r.metrics.fabric_drops;
    per_point_wall += r.wall_seconds;
    ScatterPoint p;
    p.window = 0;
    p.host = static_cast<int>(r.index);
    p.link_utilization = r.metrics.link_utilization;
    p.drop_rate = r.metrics.drop_rate;
    points.push_back(p);
  }
  bench::save_json(results, "fig1_cluster_scatter.json");
  report(std::move(points), fabric_drops, wall, per_point_wall);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--monte-carlo") == 0) return run_monte_carlo_mode();
  }
  return run_cluster_mode();
}
