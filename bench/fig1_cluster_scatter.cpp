// Figure 1: host congestion across a fleet of heterogeneous hosts.
//
// The paper's Figure 1 is a 24-hour scatter of (access-link
// utilization, host drop rate) over a production cluster. We reproduce
// it as a Monte-Carlo sweep over randomized host configurations and
// workloads -- thread counts, region sizes, hugepage settings, IOMMU
// state, sender counts, and memory antagonists all vary, as they do
// across production machines. Two properties must hold:
//   1. drop rate is positively correlated with link utilization, and
//   2. drops occur even at low utilization (memory-bus congestion),
// and every drop must be a host drop (the fabric stays loss-free).
//
// The 110 samples are independent hosts, so they run concurrently on
// the sweep pool ($HICC_JOBS workers); config generation stays serial
// so the sampled fleet is identical at any worker count.
#include <algorithm>
#include <chrono>
#include <cmath>
#include <vector>

#include "bench_util.h"
#include "common/rng.h"

using namespace hicc;

int main() {
  bench::header(
      "Figure 1", "scatter of access-link utilization vs normalized host drop "
                  "rate over randomized host configurations",
      "positive correlation between utilization and drops; a distinct "
      "population of low-utilization points with non-zero drops; zero fabric "
      "drops (all loss is at hosts)");

  const int kSamples = bench::samples(110, 12);
  Rng rng(2022);  // deterministic sweep seed

  std::vector<ExperimentConfig> cfgs;
  cfgs.reserve(static_cast<std::size_t>(kSamples));
  for (int i = 0; i < kSamples; ++i) {
    ExperimentConfig cfg = bench::base_config();
    cfg.warmup = TimePs::from_ms(bench::smoke() ? 2 : 8);
    cfg.measure = TimePs::from_ms(bench::smoke() ? 4 : 12);
    cfg.seed = 1000 + static_cast<std::uint64_t>(i);
    cfg.rx_threads = static_cast<int>(rng.range(2, 16));
    cfg.num_senders = static_cast<int>(rng.range(8, 40));
    cfg.iommu_enabled = rng.chance(0.8);
    cfg.hugepages = rng.chance(0.85);
    cfg.data_region = Bytes::mib(static_cast<double>(rng.range(4, 16)));
    // Most hosts run little antagonism; a tail runs heavy batch jobs.
    cfg.antagonist_cores =
        rng.chance(0.55) ? 0 : static_cast<int>(rng.range(4, 15));
    cfgs.push_back(cfg);
  }

  const auto t0 = std::chrono::steady_clock::now();
  const auto results = bench::sweep(cfgs);
  const double wall = std::chrono::duration<double>(
                          std::chrono::steady_clock::now() - t0)
                          .count();

  std::int64_t fabric_drops = 0;
  double per_point_wall = 0.0;
  for (const auto& r : results) {
    fabric_drops += r.metrics.fabric_drops;
    per_point_wall += r.wall_seconds;
  }

  // Normalize drop rates as the paper does (absolute values withheld).
  double max_drop = 0.0;
  for (const auto& r : results) max_drop = std::max(max_drop, r.metrics.drop_rate);

  Table t({"link_utilization", "normalized_drop_rate", "rx_threads", "senders",
           "antagonist_cores", "iommu", "hugepages", "region_mb"});
  for (const auto& r : results) {
    t.add_row({r.metrics.link_utilization,
               max_drop > 0 ? r.metrics.drop_rate / max_drop : 0.0,
               std::int64_t{r.config.rx_threads}, std::int64_t{r.config.num_senders},
               std::int64_t{r.config.antagonist_cores},
               std::string(r.config.iommu_enabled ? "on" : "off"),
               std::string(r.config.hugepages ? "on" : "off"),
               std::int64_t{r.config.data_region.count() >> 20}});
  }
  bench::finish(t, "fig1_cluster_scatter.csv");
  bench::save_json(results, "fig1_cluster_scatter.json");

  // Summary statistics backing the figure's two claims.
  double mu = 0, md = 0;
  for (const auto& r : results) {
    mu += r.metrics.link_utilization;
    md += r.metrics.drop_rate;
  }
  mu /= static_cast<double>(results.size());
  md /= static_cast<double>(results.size());
  double cov = 0, vu = 0, vd = 0;
  int low_util_with_drops = 0, with_drops = 0;
  for (const auto& r : results) {
    const double u = r.metrics.link_utilization;
    const double d = r.metrics.drop_rate;
    cov += (u - mu) * (d - md);
    vu += (u - mu) * (u - mu);
    vd += (d - md) * (d - md);
    if (d > 0.0005) {
      ++with_drops;
      if (u < 0.6) ++low_util_with_drops;
    }
  }
  const double corr = (vu > 0 && vd > 0) ? cov / std::sqrt(vu * vd) : 0.0;
  std::printf("samples: %zu\n", results.size());
  std::printf("utilization-drop correlation: %.3f (paper: positive)\n", corr);
  std::printf("points with drops: %d, of which at <60%% utilization: %d "
              "(paper: drops happen even at low utilization)\n",
              with_drops, low_util_with_drops);
  std::printf("fabric drops across all runs: %lld (paper: all drops are host drops)\n",
              static_cast<long long>(fabric_drops));
  std::printf("sweep wall-clock: %.2fs across %d worker(s); "
              "serial point-time sum: %.2fs (speedup %.2fx)\n\n",
              wall, sweep::SweepRunner::resolve_jobs(0), per_point_wall,
              wall > 0 ? per_point_wall / wall : 0.0);
  return 0;
}
