// Figure 1: host congestion across a fleet of heterogeneous hosts.
//
// The paper's Figure 1 is a 24-hour scatter of (access-link
// utilization, host drop rate) over a production cluster. We reproduce
// it as a Monte-Carlo sweep over randomized host configurations and
// workloads -- thread counts, region sizes, hugepage settings, IOMMU
// state, sender counts, and memory antagonists all vary, as they do
// across production machines. Two properties must hold:
//   1. drop rate is positively correlated with link utilization, and
//   2. drops occur even at low utilization (memory-bus congestion),
// and every drop must be a host drop (the fabric stays loss-free).
#include <algorithm>
#include <cmath>
#include <vector>

#include "bench_util.h"
#include "common/rng.h"

using namespace hicc;

int main() {
  bench::header(
      "Figure 1", "scatter of access-link utilization vs normalized host drop "
                  "rate over randomized host configurations",
      "positive correlation between utilization and drops; a distinct "
      "population of low-utilization points with non-zero drops; zero fabric "
      "drops (all loss is at hosts)");

  constexpr int kSamples = 110;
  Rng rng(2022);  // deterministic sweep seed

  struct Point {
    double util;
    double drop;
    int threads, senders, antagonists;
    bool iommu, hugepages;
    int region_mb;
  };
  std::vector<Point> points;
  std::int64_t fabric_drops = 0;

  for (int i = 0; i < kSamples; ++i) {
    ExperimentConfig cfg;
    cfg.warmup = TimePs::from_ms(8);
    cfg.measure = TimePs::from_ms(12);
    cfg.seed = 1000 + static_cast<std::uint64_t>(i);
    cfg.rx_threads = static_cast<int>(rng.range(2, 16));
    cfg.num_senders = static_cast<int>(rng.range(8, 40));
    cfg.iommu_enabled = rng.chance(0.8);
    cfg.hugepages = rng.chance(0.85);
    cfg.data_region = Bytes::mib(static_cast<double>(rng.range(4, 16)));
    // Most hosts run little antagonism; a tail runs heavy batch jobs.
    cfg.antagonist_cores =
        rng.chance(0.55) ? 0 : static_cast<int>(rng.range(4, 15));

    const Metrics m = bench::run(cfg);
    fabric_drops += m.fabric_drops;
    points.push_back(Point{m.link_utilization, m.drop_rate, cfg.rx_threads,
                           cfg.num_senders, cfg.antagonist_cores, cfg.iommu_enabled,
                           cfg.hugepages,
                           static_cast<int>(cfg.data_region.count() >> 20)});
  }

  // Normalize drop rates as the paper does (absolute values withheld).
  double max_drop = 0.0;
  for (const auto& p : points) max_drop = std::max(max_drop, p.drop);

  Table t({"link_utilization", "normalized_drop_rate", "rx_threads", "senders",
           "antagonist_cores", "iommu", "hugepages", "region_mb"});
  for (const auto& p : points) {
    t.add_row({p.util, max_drop > 0 ? p.drop / max_drop : 0.0, std::int64_t{p.threads},
               std::int64_t{p.senders}, std::int64_t{p.antagonists},
               std::string(p.iommu ? "on" : "off"),
               std::string(p.hugepages ? "on" : "off"), std::int64_t{p.region_mb}});
  }
  bench::finish(t, "fig1_cluster_scatter.csv");

  // Summary statistics backing the figure's two claims.
  double mu = 0, md = 0;
  for (const auto& p : points) { mu += p.util; md += p.drop; }
  mu /= points.size(); md /= points.size();
  double cov = 0, vu = 0, vd = 0;
  int low_util_with_drops = 0, with_drops = 0;
  for (const auto& p : points) {
    cov += (p.util - mu) * (p.drop - md);
    vu += (p.util - mu) * (p.util - mu);
    vd += (p.drop - md) * (p.drop - md);
    if (p.drop > 0.0005) {
      ++with_drops;
      if (p.util < 0.6) ++low_util_with_drops;
    }
  }
  const double corr = (vu > 0 && vd > 0) ? cov / std::sqrt(vu * vd) : 0.0;
  std::printf("samples: %zu\n", points.size());
  std::printf("utilization-drop correlation: %.3f (paper: positive)\n", corr);
  std::printf("points with drops: %d, of which at <60%% utilization: %d "
              "(paper: drops happen even at low utilization)\n",
              with_drops, low_util_with_drops);
  std::printf("fabric drops across all runs: %lld (paper: all drops are host drops)\n\n",
              static_cast<long long>(fabric_drops));
  return 0;
}
