// Workload-subsystem micro-benchmarks (google-benchmark): flow-pool
// churn, quantile-sketch insert+merge, and the whole-cluster open-loop
// incast event rate -- the three costs that bound million-flow runs.
//
// Doubles as the perf-regression harness for the workload path:
// `--json=PATH` writes a `hicc.bench.workload.v1` JSON that CI compares
// against the committed BENCH_WORKLOAD.json baseline with
// scripts/check_bench_regression.py (docs/PERFORMANCE.md). The
// zero-allocation steady state of BM_FlowChurn and
// BM_SketchInsertMerge is a correctness property (the pool and sketch
// promise it), gated through their allocs_per_op counters.
#include <benchmark/benchmark.h>

#include <atomic>
#include <cstdint>
#include <cstdlib>
#include <fstream>
#include <new>
#include <string>
#include <string_view>
#include <vector>

#include "common/fmt.h"
#include "common/rng.h"
#include "common/sketch.h"
#include "core/cluster.h"
#include "workload/flow_pool.h"
#include "workload/workload.h"

// ---------------------------------------------------------------------------
// Counting allocator hook (same shape as micro_engine's): every global
// operator new bumps g_allocs so benches can report exact heap
// allocations per iteration ("allocs_per_op").
static std::atomic<std::uint64_t> g_allocs{0};

static void* counted_alloc(std::size_t n) {
  g_allocs.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(n ? n : 1)) return p;
  throw std::bad_alloc();
}

void* operator new(std::size_t n) { return counted_alloc(n); }
void* operator new[](std::size_t n) { return counted_alloc(n); }
void* operator new(std::size_t n, std::align_val_t a) {
  g_allocs.fetch_add(1, std::memory_order_relaxed);
  const auto align = static_cast<std::size_t>(a);
  const std::size_t rounded = (n + align - 1) / align * align;
  if (void* p = std::aligned_alloc(align, rounded ? rounded : align)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t n, std::align_val_t a) {
  return ::operator new(n, a);
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }

namespace {

using namespace hicc;

/// Snapshot g_allocs around the timed loop and report the average as an
/// `allocs_per_op` user counter (also picked up by the --json reporter).
class AllocTally {
 public:
  explicit AllocTally(benchmark::State& state)
      : state_(state), start_(g_allocs.load(std::memory_order_relaxed)) {}
  ~AllocTally() {
    const std::uint64_t delta =
        g_allocs.load(std::memory_order_relaxed) - start_;
    state_.counters["allocs_per_op"] = benchmark::Counter(
        static_cast<double>(delta), benchmark::Counter::kAvgIterations);
  }

 private:
  benchmark::State& state_;
  std::uint64_t start_;
};

/// Pure-arithmetic calibration loop (no memory traffic), identical to
/// micro_engine's: the regression gate normalizes every bench against
/// this so thresholds are comparable across machines.
void BM_ReferenceSpin(benchmark::State& state) {
  std::uint64_t x = 0x9e3779b97f4a7c15ull;
  for (auto _ : state) {
    for (int i = 0; i < 64; ++i) {  // splitmix64 finalizer, fixed work
      x ^= x >> 30;
      x *= 0xbf58476d1ce4e5b9ull;
      x ^= x >> 27;
      x *= 0x94d049bb133111ebull;
      x ^= x >> 31;
    }
    benchmark::DoNotOptimize(x);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_ReferenceSpin);

/// Steady-state flow churn: acquire + release across every class of a
/// 4096-slot pool, the per-flow fixed cost of an open-loop run. One
/// iteration is one full acquire/release pair. Must be allocation-free:
/// the per-class free lists are reserved at construction, so a million
/// flows recycle the same slots (the memory-bound acceptance of
/// docs/WORKLOADS.md). This is the bench the CI regression gate pins.
void BM_FlowChurn(benchmark::State& state) {
  constexpr int kClasses = 16;
  workload::FlowPool pool(4096, kClasses);
  int cls = 0;
  AllocTally tally(state);
  for (auto _ : state) {
    const workload::FlowHandle h = pool.acquire(cls);
    benchmark::DoNotOptimize(h.generation);
    pool.release(h);
    cls = (cls + 1) % kClasses;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_FlowChurn);

/// Sketch ingestion + aggregation: each iteration adds one FCT-like
/// sample to one of 8 "per-host" sketches and, every 1024 samples,
/// merges all 8 into a cluster aggregate (the snapshot path). add()
/// and merge() promise zero allocation after construction.
void BM_SketchInsertMerge(benchmark::State& state) {
  constexpr int kHosts = 8;
  constexpr int kMergeEvery = 1024;
  std::vector<QuantileSketch> hosts(kHosts, QuantileSketch(0.01));
  QuantileSketch merged(0.01);
  Rng rng(2022);
  int n = 0;
  AllocTally tally(state);
  for (auto _ : state) {
    // Spread samples over ~4 decades like a real FCT stream.
    hosts[static_cast<std::size_t>(n % kHosts)].add(rng.uniform(10.0, 1e5));
    if (++n == kMergeEvery) {
      n = 0;
      merged.reset();
      for (const QuantileSketch& h : hosts) merged.merge(h);
      benchmark::DoNotOptimize(merged.count());
    }
  }
  benchmark::DoNotOptimize(merged.fingerprint());
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_SketchInsertMerge);

/// Whole-cluster macro bench: the 2x2x8 cluster under open-loop bursty
/// incast, end to end -- arrivals, slot churn, transport, full receiver
/// stacks, sketch recording. Arg is the engine thread count (0 =
/// legacy single simulator). Items/s is simulator events per
/// wall-second, the figure that bounds 1M-flow sweep wall-clock.
void BM_OpenLoopIncastEventRate(benchmark::State& state) {
  std::int64_t events = 0;
  std::int64_t flows = 0;
  for (auto _ : state) {
    ClusterConfig cfg;
    cfg.topology.leaves = 2;
    cfg.topology.spines = 2;
    cfg.topology.hosts_per_leaf = 4;
    cfg.receivers = 2;
    cfg.host.rx_threads = 4;
    cfg.host.warmup = TimePs::from_us(200);
    cfg.host.measure = TimePs::from_ms(1);
    cfg.parallelism = static_cast<int>(state.range(0));
    cfg.workload.pattern = workload::Pattern::kIncast;
    cfg.workload.arrival = workload::Arrival::kBursty;
    cfg.workload.rate_per_s = 50e3;
    cfg.workload.fanout = 4;
    cfg.workload.max_active = 256;
    ClusterExperiment exp(std::move(cfg));
    const ClusterMetrics m = exp.run();
    events += static_cast<std::int64_t>(m.events_executed);
    flows += m.workload.flows_completed;
    benchmark::DoNotOptimize(events);
  }
  state.counters["engine_threads"] =
      benchmark::Counter(static_cast<double>(state.range(0)));
  state.counters["flows_completed"] = benchmark::Counter(
      static_cast<double>(flows), benchmark::Counter::kAvgIterations);
  state.SetItemsProcessed(events);
}
BENCHMARK(BM_OpenLoopIncastEventRate)->Arg(0)->Arg(2)->Unit(benchmark::kMillisecond);

// ---------------------------------------------------------------------------
// `hicc.bench.workload.v1` JSON output: micro_engine's tee reporter
// with the workload schema tag, so the regression gate can tell the
// records apart.

class JsonTeeReporter : public benchmark::ConsoleReporter {
 public:
  struct Row {
    std::string name;
    double ns_per_op = 0;
    double items_per_sec = 0;
    double allocs_per_op = 0;
    std::int64_t iterations = 0;
  };

  void ReportRuns(const std::vector<Run>& report) override {
    for (const Run& r : report) {
      if (r.run_type != Run::RT_Iteration || r.error_occurred) continue;
      Row row;
      row.name = r.benchmark_name();
      const double iters =
          r.iterations > 0 ? static_cast<double>(r.iterations) : 1.0;
      row.ns_per_op = r.real_accumulated_time / iters * 1e9;
      row.iterations = r.iterations;
      if (auto it = r.counters.find("items_per_second"); it != r.counters.end())
        row.items_per_sec = it->second;
      if (auto it = r.counters.find("allocs_per_op"); it != r.counters.end())
        row.allocs_per_op = it->second;
      rows_.push_back(std::move(row));
    }
    ConsoleReporter::ReportRuns(report);
  }

  bool write_json(const std::string& path) const {
    std::ofstream os(path);
    if (!os) return false;
    os << "{\"schema\": \"hicc.bench.workload.v1\",\n\"benchmarks\": [\n";
    for (std::size_t i = 0; i < rows_.size(); ++i) {
      const Row& r = rows_[i];
      os << " {\"name\": \"" << r.name << "\", \"ns_per_op\": ";
      put_double(os, r.ns_per_op);
      os << ", \"items_per_sec\": ";
      put_double(os, r.items_per_sec);
      os << ", \"allocs_per_op\": ";
      put_double(os, r.allocs_per_op);
      os << ", \"iterations\": " << r.iterations << "}";
      os << (i + 1 < rows_.size() ? ",\n" : "\n");
    }
    os << "]}\n";
    return os.good();
  }

 private:
  std::vector<Row> rows_;
};

}  // namespace

int main(int argc, char** argv) {
  std::string json_path;
  std::vector<char*> args;
  for (int i = 0; i < argc; ++i) {
    const std::string_view a = argv[i];
    if (a.rfind("--json=", 0) == 0) {
      json_path = std::string(a.substr(7));
    } else {
      args.push_back(argv[i]);
    }
  }
  int filtered_argc = static_cast<int>(args.size());
  args.push_back(nullptr);
  benchmark::Initialize(&filtered_argc, args.data());
  if (benchmark::ReportUnrecognizedArguments(filtered_argc, args.data()))
    return 1;
  JsonTeeReporter reporter;
  benchmark::RunSpecifiedBenchmarks(&reporter);
  benchmark::Shutdown();
  if (!json_path.empty() && !reporter.write_json(json_path)) {
    std::fprintf(stderr, "micro_workload: cannot write %s\n", json_path.c_str());
    return 1;
  }
  return 0;
}
